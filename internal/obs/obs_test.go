package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	root := NewRoot("server")
	ctx := WithSpan(context.Background(), root)

	ctx2, solve := Start(ctx, "solve")
	solve.SetStr("solver", "sspa")
	solve.SetInt("cached", 0)
	if FromContext(ctx2) != solve {
		t.Fatalf("Start did not install the child span in the context")
	}

	inner := solve.StartChild("augment")
	inner.SetInt("iterations", 42)
	inner.End()
	solve.AddTimed("netmetric-query", 5*time.Millisecond).SetInt("calls", 7)
	solve.End()
	root.End()

	tree := root.Tree()
	if tree.Name != "server" || len(tree.Children) != 1 {
		t.Fatalf("unexpected root: %+v", tree)
	}
	s := tree.Children[0]
	if s.Name != "solve" || s.Attrs["solver"] != "sspa" {
		t.Fatalf("unexpected solve node: %+v", s)
	}
	if got := tree.Find("augment"); got == nil || got.Attrs["iterations"] != int64(42) {
		t.Fatalf("augment node wrong: %+v", got)
	}
	nm := tree.Find("netmetric-query")
	if nm == nil || nm.DurNS != int64(5*time.Millisecond) || nm.Attrs["calls"] != int64(7) {
		t.Fatalf("netmetric-query node wrong: %+v", nm)
	}

	want := "server\n  solve[cached solver]\n    augment[iterations]\n    netmetric-query[calls]\n"
	if got := tree.Shape(); got != want {
		t.Fatalf("shape mismatch:\n got %q\nwant %q", got, want)
	}

	// JSON round-trips with stable keys and no timestamps.
	b, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"name":"server"`, `"dur_ns"`, `"solver":"sspa"`} {
		if !strings.Contains(string(b), frag) {
			t.Fatalf("marshaled tree missing %q: %s", frag, b)
		}
	}
}

func TestAttrOverwrite(t *testing.T) {
	s := NewRoot("r")
	s.SetInt("k", 1)
	s.SetInt("k", 2)
	s.SetStr("k", "three")
	s.End()
	n := s.Tree()
	if len(n.Attrs) != 1 || n.Attrs["k"] != "three" {
		t.Fatalf("attr overwrite failed: %+v", n.Attrs)
	}
}

func TestSelfTimeTelescopes(t *testing.T) {
	root := NewRoot("root")
	c1 := root.StartChild("a")
	time.Sleep(2 * time.Millisecond)
	c1.End()
	c2 := root.StartChild("b")
	g := c2.StartChild("b1")
	time.Sleep(2 * time.Millisecond)
	g.End()
	c2.End()
	root.End()

	tree := root.Tree()
	sum := tree.SumSelfNS()
	// Sequential children nested inside their parents: self times
	// telescope to exactly the root duration.
	if sum != tree.DurNS {
		t.Fatalf("self-time sum %d != root duration %d", sum, tree.DurNS)
	}
}

// TestOverlaySpans: an AddOverlay child reports time that accrued
// inside its siblings, so it must not change the tree's self-time sum
// — without the overlay flag that time would count twice.
func TestOverlaySpans(t *testing.T) {
	root := NewRoot("root")
	c := root.StartChild("work")
	time.Sleep(2 * time.Millisecond)
	c.End()
	root.End()
	before := root.Tree().SumSelfNS()

	// Claim half the work's time again as an overlay annotation.
	ov := c.AddOverlay("queries", time.Millisecond)
	ov.SetInt("calls", 100)
	tree := root.Tree()
	if got := tree.SumSelfNS(); got != before {
		t.Fatalf("overlay child changed self-time sum: %d != %d", got, before)
	}
	q := tree.Find("queries")
	if q == nil || !q.Overlay {
		t.Fatalf("overlay span not marked in the tree: %+v", q)
	}
	if q.DurNS != int64(time.Millisecond) {
		t.Errorf("overlay duration %d, want %d", q.DurNS, time.Millisecond)
	}
	var s *Span
	if s.AddOverlay("x", 0) != nil {
		t.Fatal("nil AddOverlay must return nil")
	}
}

func TestNilSafety(t *testing.T) {
	var s *Span
	s.End()
	s.SetInt("k", 1)
	s.SetFloat("k", 1)
	s.SetStr("k", "v")
	s.SetSink("h", NewHistogram(LatencyBounds))
	if s.StartChild("c") != nil || s.AddTimed("c", 0) != nil || s.Sink("h") != nil || s.Tree() != nil {
		t.Fatal("nil span methods must return nil")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) must be nil")
	}
	ctx := context.Background()
	if WithSpan(ctx, nil) != ctx {
		t.Fatal("WithSpan(ctx, nil) must return ctx unchanged")
	}
	ctx2, sp := Start(ctx, "x")
	if ctx2 != ctx || sp != nil {
		t.Fatal("Start without an installed span must be a no-op")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if snap := h.Snapshot(); snap.Count != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
	var n *TraceNode
	if n.SelfNS() != 0 || n.SumSelfNS() != 0 || n.Find("x") != nil || n.Shape() != "" {
		t.Fatal("nil TraceNode helpers must be no-ops")
	}
}

func TestSinks(t *testing.T) {
	root := NewRoot("r")
	h := NewHistogram(LatencyBounds)
	root.SetSink("pq", h)
	child := root.StartChild("c")
	grand := child.StartChild("g")
	if grand.Sink("pq") != h {
		t.Fatal("descendant did not see root sink")
	}
	if grand.Sink("missing") != nil {
		t.Fatal("missing sink must be nil")
	}
	grand.Sink("pq").Observe(0.003)
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("sink observe lost: count=%d", got)
	}
}

func TestConcurrentChildren(t *testing.T) {
	root := NewRoot("r")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.StartChild("w")
			c.SetInt("n", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Tree().Children); got != 16 {
		t.Fatalf("lost children under concurrency: %d", got)
	}
}

// TestDisabledPathZeroAllocs pins the tentpole guarantee: with no
// tracer installed, the instrumentation sites allocate nothing.
func TestDisabledPathZeroAllocs(t *testing.T) {
	ctx := context.Background()
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := Start(ctx, "solve")
		sp.SetStr("solver", "sspa")
		sp.SetInt("cached", 0)
		sp.StartChild("augment").End()
		sp.AddTimed("netmetric-query", time.Millisecond)
		h.Observe(0.001)
		sp.End()
		_ = ctx2
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocated %.1f/op, want 0", allocs)
	}
}

// TestEnabledPathAllocCeiling documents the enabled-path budget: a
// root + one attributed child span, ended and threaded through a
// context, stays within 12 allocations. (Measured ~9: root span,
// two context values, child span, two children-slice growths, attr
// slice, and End bookkeeping; the ceiling leaves slack for runtime
// variation, not for regressions.)
func TestEnabledPathAllocCeiling(t *testing.T) {
	const ceiling = 12
	allocs := testing.AllocsPerRun(1000, func() {
		root := NewRoot("r")
		ctx := WithSpan(context.Background(), root)
		_, sp := Start(ctx, "solve")
		sp.SetInt("cached", 0)
		sp.End()
		root.End()
	})
	if allocs > ceiling {
		t.Fatalf("enabled tracer path allocated %.1f/op, ceiling %d", allocs, ceiling)
	}
}

func BenchmarkStartEndDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "solve")
		sp.SetInt("cached", 0)
		sp.End()
	}
}

func BenchmarkStartEndEnabled(b *testing.B) {
	root := NewRoot("r")
	ctx := WithSpan(context.Background(), root)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "solve")
		sp.SetInt("cached", 0)
		sp.End()
	}
	root.End()
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBounds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}
