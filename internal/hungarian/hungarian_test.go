package hungarian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnown(t *testing.T) {
	tests := []struct {
		name string
		cost [][]float64
		want float64
	}{
		{
			"textbook 3x3",
			[][]float64{
				{4, 1, 3},
				{2, 0, 5},
				{3, 2, 2},
			},
			5, // (0,1)=1 + (1,0)=2 + (2,2)=2
		},
		{
			"identity best",
			[][]float64{
				{0, 9, 9},
				{9, 0, 9},
				{9, 9, 0},
			},
			0,
		},
		{
			"anti-diagonal best",
			[][]float64{
				{9, 9, 0},
				{9, 0, 9},
				{0, 9, 9},
			},
			0,
		},
		{
			"single cell",
			[][]float64{{7}},
			7,
		},
		{
			"rectangular 2x4",
			[][]float64{
				{5, 1, 8, 9},
				{4, 6, 2, 3},
			},
			3, // 1 + 2
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			assign, total, err := Solve(tc.cost)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(total-tc.want) > 1e-9 {
				t.Fatalf("total %v want %v (assign %v)", total, tc.want, assign)
			}
			// Assignment must be a matching into distinct columns.
			seen := map[int]bool{}
			sum := 0.0
			for r, c := range assign {
				if c < 0 || c >= len(tc.cost[0]) || seen[c] {
					t.Fatalf("invalid assignment %v", assign)
				}
				seen[c] = true
				sum += tc.cost[r][c]
			}
			if math.Abs(sum-total) > 1e-9 {
				t.Fatalf("reported total %v != recomputed %v", total, sum)
			}
		})
	}
}

func TestSolveErrors(t *testing.T) {
	if _, _, err := Solve(nil); err == nil {
		t.Error("empty matrix must fail")
	}
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix must fail")
	}
	if _, _, err := Solve([][]float64{{1}, {2}}); err == nil {
		t.Error("more rows than columns must fail")
	}
}

// Property: on square matrices up to 7x7, the Hungarian optimum equals
// brute-force enumeration over all permutations.
func TestSolveMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) / 10
			}
		}
		_, got, err := Solve(cost)
		if err != nil {
			return false
		}
		want := bruteForce(cost)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int, cur float64)
	rec = func(k int, cur float64) {
		if cur >= best {
			return
		}
		if k == n {
			best = cur
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k+1, cur+cost[k][perm[k]])
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0, 0)
	return best
}

func BenchmarkSolve100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 100
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 100
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}
