// Package hungarian implements the Hungarian (Kuhn–Munkres) algorithm
// for the assignment problem, the classical main-memory baseline the
// paper discusses in §2.1 [8, 11].
//
// The paper notes that the Hungarian algorithm "constructs a cost matrix
// with |Q|·|P| entries … This solution is limited to small problem
// instances; it becomes infeasible even for moderate-sized problems, as
// the aforementioned matrix may not fit in main memory." This package
// exists to reproduce that claim quantitatively (see the ablation
// benches): CCA with capacities is reduced to one-to-one assignment by
// replicating each provider q.k times, so the matrix has (Σ q.k)·|P|
// entries and the O(n³) algorithm collapses quickly as instances grow.
//
// The implementation is the O(n³) shortest-augmenting-path formulation
// (Jonker–Volgenant style dual potentials) on a rectangular cost matrix.
package hungarian

import (
	"errors"
	"math"
)

// ErrShape is returned when the cost matrix is empty or ragged.
var ErrShape = errors.New("hungarian: cost matrix must be rectangular and non-empty")

// Solve computes a minimum-cost assignment of rows to columns for the
// given cost matrix (len(cost) rows, len(cost[0]) columns, rows ≤
// columns; transpose if needed). It returns, for each row, the column
// assigned to it, plus the total cost.
func Solve(cost [][]float64) ([]int, float64, error) {
	return SolveCancel(cost, nil)
}

// SolveCancel is Solve with a cancellation hook: cancel (when non-nil)
// is polled once per augmented row — the Θ(n³) work is n rows of
// shortest-path search, so a cancelled solve returns within one row —
// and its error is returned verbatim. The CCA solver threads the
// caller's context in this way.
func SolveCancel(cost [][]float64, cancel func() error) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, ErrShape
	}
	m := len(cost[0])
	for _, row := range cost {
		if len(row) != m {
			return nil, 0, ErrShape
		}
	}
	if n > m {
		return nil, 0, errors.New("hungarian: more rows than columns; transpose the matrix")
	}

	// 1-based arrays per the classical formulation.
	u := make([]float64, n+1) // row duals
	v := make([]float64, m+1) // column duals
	match := make([]int, m+1) // column -> row (0 = free)
	way := make([]int, m+1)   // alternating-path back-pointers
	for i := 1; i <= n; i++ {
		if cancel != nil {
			if err := cancel(); err != nil {
				return nil, 0, err
			}
		}
		match[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := match[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[match[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if match[j0] == 0 {
				break
			}
		}
		// Augment along the alternating path.
		for j0 != 0 {
			j1 := way[j0]
			match[j0] = match[j1]
			j0 = j1
		}
	}

	assign := make([]int, n)
	total := 0.0
	for j := 1; j <= m; j++ {
		if match[j] > 0 {
			assign[match[j]-1] = j - 1
			total += cost[match[j]-1][j-1]
		}
	}
	return assign, total, nil
}
