package cca

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

// engineWorkload builds nq-provider instances over one shared customer
// dataset — the many-scenarios-one-dataset shape the engine exists for.
func engineWorkload(t testing.TB, instances, nc int) ([]Instance, *Customers) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, nc)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	customers, err := IndexCustomers(pts)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Instance, instances)
	for i := range batch {
		providers := make([]Provider, 4+i%3)
		for q := range providers {
			providers[q] = Provider{
				Pt:  Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
				Cap: 5 + rng.Intn(20),
			}
		}
		batch[i] = Instance{
			Label:     fmt.Sprintf("scenario-%d", i),
			Providers: providers,
			Customers: customers,
			Solver:    []string{"ida", "nia", "ca"}[i%3],
		}
	}
	return batch, customers
}

// fingerprint renders the deterministic portion of a result: everything
// except wall-clock timings (CPU time is the only nondeterministic
// field; page-fault counts are exact because every solve starts cold).
func fingerprint(r InstanceResult) string {
	if r.Err != nil {
		return fmt.Sprintf("%d/%s/err:%v", r.Index, r.Label, r.Err)
	}
	res := *r.Result
	res.Metrics.CPUTime = 0
	res.ConciseTime = 0
	res.RefineTime = 0
	return fmt.Sprintf("%d/%s/%s %+v", r.Index, r.Label, r.Solver, res)
}

// TestEngineMatchesSequential: a parallel batch run must produce
// byte-identical per-instance results to the one-worker sequential loop.
func TestEngineMatchesSequential(t *testing.T) {
	batch, customers := engineWorkload(t, 9, 600)
	defer customers.Close()

	seq, err := (&Engine{Workers: 1}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Engine{Workers: 4}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Fleet.Solved != len(batch) || par.Fleet.Solved != len(batch) {
		t.Fatalf("solved %d/%d of %d", seq.Fleet.Solved, par.Fleet.Solved, len(batch))
	}
	for i := range batch {
		a, b := fingerprint(seq.Results[i]), fingerprint(par.Results[i])
		if a != b {
			t.Errorf("instance %d diverged:\nsequential: %s\nparallel:   %s", i, a, b)
		}
	}
	if seq.Fleet.Cost != par.Fleet.Cost || seq.Fleet.Pairs != par.Fleet.Pairs || seq.Fleet.Faults != par.Fleet.Faults {
		t.Errorf("fleet aggregates diverged: %+v vs %+v", seq.Fleet, par.Fleet)
	}
}

// TestEngineResultsValid: every engine result must pass the problem
// validator against its own instance.
func TestEngineResultsValid(t *testing.T) {
	batch, customers := engineWorkload(t, 6, 400)
	defer customers.Close()
	out, err := (&Engine{}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if r.Err != nil {
			t.Fatalf("instance %d: %v", i, r.Err)
		}
		if r.Label != batch[i].Label || r.Index != i {
			t.Errorf("instance %d mislabeled: %q/%d", i, r.Label, r.Index)
		}
		if batch[i].Solver == "ca" {
			if r.Result.Kind != SolverApproximate || r.Result.ErrorBound <= 0 {
				t.Errorf("instance %d: CA result missing its error bound: %+v", i, r.Result.Kind)
			}
			continue // approximate: validate feasibility only via engine result size
		}
		if err := Validate(batch[i].Providers, customers, &r.Result.Result); err != nil {
			t.Errorf("instance %d: %v", i, err)
		}
	}
}

// TestEngineErrors: per-instance failures are isolated; malformed
// batches are rejected up front.
func TestEngineErrors(t *testing.T) {
	batch, customers := engineWorkload(t, 3, 200)
	defer customers.Close()
	batch[1].Solver = "no-such-solver"
	out, err := (&Engine{}).Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fleet.Errors != 1 || out.Fleet.Solved != 2 {
		t.Fatalf("fleet = %+v, want 1 error and 2 solved", out.Fleet)
	}
	if out.Results[1].Err == nil || !strings.Contains(out.Results[1].Err.Error(), "no-such-solver") {
		t.Errorf("instance 1 error = %v", out.Results[1].Err)
	}
	if out.Results[0].Err != nil || out.Results[2].Err != nil {
		t.Errorf("healthy instances failed: %v, %v", out.Results[0].Err, out.Results[2].Err)
	}

	if _, err := (&Engine{}).Run([]Instance{{Providers: nil, Customers: nil}}); err == nil {
		t.Error("nil Customers not rejected")
	}
}

// TestCloneIsolation: cloned handles see the same data but keep
// independent buffers and I/O counters, and closing a clone does not
// invalidate the original.
func TestCloneIsolation(t *testing.T) {
	_, customers := engineWorkload(t, 1, 300)
	defer customers.Close()
	clone, err := customers.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.Len() != customers.Len() {
		t.Fatalf("clone sees %d customers, want %d", clone.Len(), customers.Len())
	}
	if clone.BufferFrames() != customers.BufferFrames() {
		t.Fatalf("clone buffer %d frames, want %d", clone.BufferFrames(), customers.BufferFrames())
	}
	customers.ResetIOStats()
	if _, err := clone.KNN(Point{X: 500, Y: 500}, 10); err != nil {
		t.Fatal(err)
	}
	if got := customers.IOStats(); got.Faults != 0 || got.Hits != 0 {
		t.Errorf("clone reads leaked into the original's counters: %+v", got)
	}
	if got := clone.IOStats(); got.LogicalReads() == 0 {
		t.Error("clone performed no reads")
	}
	if err := clone.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := customers.KNN(Point{X: 1, Y: 1}, 1); err != nil {
		t.Errorf("original handle broken after clone close: %v", err)
	}
}

// TestBufferFramesClamped: tiny stores must yield an explicit one-frame
// buffer, observable through BufferFrames (the silent under-sizing fix).
func TestBufferFramesClamped(t *testing.T) {
	pts := []Point{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	customers, err := IndexCustomersConfig(pts, IndexConfig{BufferFraction: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer customers.Close()
	if got := customers.BufferFrames(); got != 1 {
		t.Errorf("BufferFrames = %d, want explicit clamp to 1 on a tiny store", got)
	}
}

// BenchmarkEngineBatch compares a sequential loop against the bounded
// worker pool on the same batch. The acceptance target is ≥ 2× speedup
// for workers=GOMAXPROCS on a multi-core box, with per-instance results
// identical (TestEngineMatchesSequential asserts that part).
func BenchmarkEngineBatch(b *testing.B) {
	nWorkers := runtime.GOMAXPROCS(0)
	if nWorkers < 2 {
		nWorkers = 2 // keep the pool path exercised even on one core
	}
	batch, customers := engineWorkload(b, 2*nWorkers, 1500)
	defer customers.Close()
	for i := range batch {
		batch[i].Solver = "ida" // uniform cost so speedup reflects the pool
	}
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{fmt.Sprintf("parallel-%d", nWorkers), nWorkers},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			// CacheSize -1: repeated iterations must measure real solves,
			// not cross-instance cache hits.
			engine := &Engine{Workers: cfg.workers, CacheSize: -1}
			defer engine.Close()
			for i := 0; i < b.N; i++ {
				out, err := engine.Run(batch)
				if err != nil {
					b.Fatal(err)
				}
				if out.Fleet.Errors != 0 {
					b.Fatalf("batch errors: %+v", out.Fleet)
				}
			}
		})
	}
}
