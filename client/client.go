package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Client talks to one ccad server. The zero value is not usable; build
// one with New. It is safe for concurrent use (it shares one
// http.Client).
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient nil selects http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// APIError is a non-2xx server response.
type APIError struct {
	// StatusCode is the HTTP status (429 signals admission backpressure;
	// honor RetryAfter before resubmitting).
	StatusCode int
	// Message is the server's error text.
	Message string
	// RetryAfter is the Retry-After header in seconds (0 when absent).
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ccad: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// IsBackpressure reports whether err is the server shedding load
// (HTTP 429): the request was not admitted and can be retried after
// RetryAfter seconds.
func IsBackpressure(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.StatusCode == http.StatusTooManyRequests
}

// do runs one JSON round-trip; out nil skips decoding the body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.send(ctx, method, path, in, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// send issues the request and maps non-2xx statuses to *APIError.
func (c *Client) send(ctx context.Context, method, path string, in any, accept string) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		ae := &APIError{StatusCode: resp.StatusCode}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			ae.RetryAfter = ra
		}
		var eresp ErrorResponse
		if data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
			if json.Unmarshal(data, &eresp) == nil && eresp.Error != "" {
				ae.Message = eresp.Error
			} else {
				ae.Message = strings.TrimSpace(string(data))
			}
		}
		return nil, ae
	}
	return resp, nil
}

// Solve submits instances and returns the buffered response once every
// instance finished. Per-instance failures land in
// InstanceResult.Error, not in the returned error.
func (c *Client) Solve(ctx context.Context, req SolveRequest) (*SolveResponse, error) {
	var out SolveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/solve", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveStream submits instances and streams results back as they
// complete (NDJSON). fn is called once per instance in completion
// order; a non-nil return aborts the stream and is returned. The final
// fleet aggregate is returned after the last result.
func (c *Client) SolveStream(ctx context.Context, req SolveRequest, fn func(InstanceResult) error) (*Fleet, error) {
	resp, err := c.send(ctx, http.MethodPost, "/v1/solve?stream=ndjson", req, "application/x-ndjson")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// A json.Decoder consumes the newline-delimited envelopes as a JSON
	// stream, so one huge result (a matching over millions of customers)
	// has no line-length ceiling the buffered path would not have.
	dec := json.NewDecoder(resp.Body)
	var fleet *Fleet
	for {
		var env StreamEnvelope
		if err := dec.Decode(&env); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("ccad: bad stream envelope: %w", err)
		}
		switch {
		case env.Result != nil:
			if err := fn(*env.Result); err != nil {
				return nil, err
			}
		case env.Fleet != nil:
			fleet = env.Fleet
		}
	}
	if fleet == nil {
		return nil, fmt.Errorf("ccad: stream ended without a fleet line")
	}
	return fleet, nil
}

// NewSession creates an online assignment session over the given
// providers and returns its id.
func (c *Client) NewSession(ctx context.Context, req SessionRequest) (*SessionInfo, error) {
	var out SessionInfo
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Arrive adds one customer to a session, incrementally restoring the
// optimal matching (one augmenting path or swap, not a re-solve).
func (c *Client) Arrive(ctx context.Context, sessionID string, req ArriveRequest) (*ArriveResponse, error) {
	var out ArriveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/arrive", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Depart removes a previously arrived customer from a session,
// releasing its slot and repairing the matching. Departing an unknown
// or already-departed id is an *APIError with status 404.
func (c *Client) Depart(ctx context.Context, sessionID string, req DepartRequest) (*DepartResponse, error) {
	var out DepartResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/depart", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Resize changes one provider's capacity in a session. Shrinking below
// current usage evicts and re-routes assignees; growing admits waiting
// customers. A provider index out of range is an *APIError with status
// 404, a negative capacity one with status 400.
func (c *Client) Resize(ctx context.Context, sessionID string, req ResizeRequest) (*ResizeResponse, error) {
	var out ResizeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+sessionID+"/resize", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Matching returns a session's current optimal matching.
func (c *Client) Matching(ctx context.Context, sessionID string) (*MatchingResponse, error) {
	var out MatchingResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+sessionID+"/matching", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteSession ends a session and frees its server-side matcher.
func (c *Client) DeleteSession(ctx context.Context, sessionID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+sessionID, nil, nil)
}

// Datasets lists the server's named datasets.
func (c *Client) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	var out []DatasetInfo
	if err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// UploadDataset uploads a customer dataset as CSV (dataio's id,x,y
// format) under the given name, replacing any existing dataset of that
// name. The server validates and normalizes the rows before committing.
func (c *Client) UploadDataset(ctx context.Context, name string, csv io.Reader) (*DatasetInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/datasets/"+name, csv)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		ae := &APIError{StatusCode: resp.StatusCode}
		var eresp ErrorResponse
		if data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
			if json.Unmarshal(data, &eresp) == nil && eresp.Error != "" {
				ae.Message = eresp.Error
			} else {
				ae.Message = strings.TrimSpace(string(data))
			}
		}
		return nil, ae
	}
	var out DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EvictDataset drops a named dataset's in-memory index; its files stay
// on disk and the next solve naming it reloads cold (re-paying its page
// faults). An unknown dataset is an *APIError with status 404.
func (c *Client) EvictDataset(ctx context.Context, name string) (*DatasetEvictResponse, error) {
	var out DatasetEvictResponse
	if err := c.do(ctx, http.MethodDelete, "/v1/datasets/"+name, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics returns the raw Prometheus text exposition of GET /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.send(ctx, http.MethodGet, "/metrics", nil, "")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Healthz checks the server's health endpoint; it returns nil when the
// server is up and accepting work, and an *APIError (503) while
// draining.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
