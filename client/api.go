// Package client is the Go client for ccad, the CCA assignment
// service (cmd/ccad). It speaks the service's JSON wire format — the
// types in this file are the protocol, shared by the server
// (internal/server) and every consumer (the conformance tests, the
// ccabench -serve load generator, and external callers).
//
// The wire format carries float64 coordinates and distances through
// encoding/json, which marshals them with the shortest representation
// that round-trips exactly, so a matching fetched over HTTP is
// bit-identical to the one the in-process solver produced — the
// server-path conformance tests assert exactly that.
package client

// Provider is one capacitated service provider.
type Provider struct {
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
	Cap int     `json:"cap"`
}

// Customer is one customer point with its identifier.
type Customer struct {
	ID int64   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// Options tunes a solve; the zero value selects the paper defaults
// (mirrors cca.SolverOptions field by field, minus the non-serializable
// ones: metric values travel as Instance.Metric, and function-valued
// options have no wire form).
type Options struct {
	// Theta is RIA's range increment θ (0 = the paper's 0.8).
	Theta float64 `json:"theta,omitempty"`
	// Delta is the approximate solvers' δ (0 = paper default).
	Delta float64 `json:"delta,omitempty"`
	// Shards / ShardBoundary / ShardWorkers tune "sharded:*" solvers.
	Shards        int     `json:"shards,omitempty"`
	ShardBoundary float64 `json:"shard_boundary,omitempty"`
	ShardWorkers  int     `json:"shard_workers,omitempty"`
	// Ablation switches (see core.Options).
	DisablePUA      bool `json:"disable_pua,omitempty"`
	DisableTheorem2 bool `json:"disable_theorem2,omitempty"`
	DisableANN      bool `json:"disable_ann,omitempty"`
	ANNGroupSize    int  `json:"ann_group_size,omitempty"`
	// DistTable gates the bulk distance-table precompute for network-
	// metric solves: 0 (default) sizes it automatically, -1 disables it,
	// positive values set the memory budget in float64 cells. Purely a
	// performance knob — results are byte-identical either way.
	DistTable int `json:"dist_table,omitempty"`
}

// Instance is one solve request: a provider set plus a customer set —
// inline points or a server-side named dataset, exactly one of the two.
type Instance struct {
	// Label identifies the instance in results (optional).
	Label string `json:"label,omitempty"`
	// Solver is the registry name ("" = the server's default, normally
	// "ida"; "sharded:<base>" selects the sharded meta-solver).
	Solver string `json:"solver,omitempty"`
	// Providers is the capacitated provider set Q.
	Providers []Provider `json:"providers"`
	// Customers carries the customer points inline. Mutually exclusive
	// with Dataset.
	Customers []Customer `json:"customers,omitempty"`
	// Dataset names a server-side dataset (see GET /v1/datasets).
	// Named datasets are indexed once and shared, so repeated solves
	// hit the engine's result cache; inline customers are re-indexed
	// per request and never do.
	Dataset string `json:"dataset,omitempty"`
	// Metric selects the distance backend: "" or "euclidean" (the
	// paper's setting) or "network" (shortest-path over the synthetic
	// road network with NetGrid/NetSeed, defaults 32/2008). The server
	// bounds NetGrid and the number of distinct (NetGrid, NetSeed)
	// networks it will materialize; out-of-range values fail the
	// instance.
	Metric  string `json:"metric,omitempty"`
	NetGrid int    `json:"net_grid,omitempty"`
	NetSeed int64  `json:"net_seed,omitempty"`
	// NetLandmarks configures ALT landmark pruning for "network": 0
	// selects the server default, -1 disables it (plain Dijkstra point
	// queries), positive values pick the landmark count (bounded by the
	// server). Part of the network's identity — like NetGrid/NetSeed,
	// not an Options field — because landmark state lives on the shared
	// per-network metric. Distances are byte-identical either way.
	NetLandmarks int `json:"net_landmarks,omitempty"`
	// NetCH configures contraction-hierarchy point queries for
	// "network": 0 selects automatic mode (on for networks of at least
	// DefaultCHMinNodes nodes), 1 forces the hierarchy on, -1 disables
	// it. Part of the network's identity for the same reason as
	// NetLandmarks. Distances are byte-identical either way.
	NetCH int `json:"net_ch,omitempty"`
	// Options tunes the solve (nil = defaults).
	Options *Options `json:"options,omitempty"`
	// Lane selects the scheduling priority: "" or "interactive"
	// (drained first) or "batch" (bulk throughput work).
	Lane string `json:"lane,omitempty"`
	// TimeoutMS bounds this instance's solve in milliseconds (0 = the
	// server's default). The deadline is observed between augmenting
	// iterations; an expired instance reports a context error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	Instances []Instance `json:"instances"`
	// Trace asks the server to attach the request's completed span tree
	// to the response (equivalent to the trace=1 query parameter, which
	// additionally covers the body-read phase because the server sees it
	// before decoding).
	Trace bool `json:"trace,omitempty"`
}

// TraceSpan is one node of a solve request's span tree (trace=1): a
// named phase with its duration, attributes, and child phases. Durations
// are nanoseconds; the tree's structure (names, nesting, attribute keys)
// is deterministic for a given request shape — only durations and
// attribute values vary run to run.
type TraceSpan struct {
	Name  string         `json:"name"`
	DurNS int64          `json:"dur_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
	// Overlay marks a span whose duration accrued inside its sibling
	// spans (e.g. netmetric-query time spent during flowgraph-build and
	// augment): skip it when summing self-times, or the overlapped time
	// counts twice.
	Overlay  bool         `json:"overlay,omitempty"`
	Children []*TraceSpan `json:"children,omitempty"`
}

// Histogram is a bounded latency distribution: ascending upper bounds in
// seconds, one count per bucket plus a final overflow bucket
// (len(Counts) == len(Bounds)+1), and the observation count and sum.
type Histogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Pair is one (provider, customer) assignment of a matching. It carries
// the customer's coordinates so the wire result round-trips the full
// cca.Pair.
type Pair struct {
	Provider int     `json:"provider"`
	Customer int64   `json:"customer"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Dist     float64 `json:"dist"`
}

// InstanceResult is one instance's outcome. Exactly one of Pairs/Error
// is meaningful: a failed instance reports Error and no matching.
type InstanceResult struct {
	Index  int    `json:"index"`
	Label  string `json:"label,omitempty"`
	Solver string `json:"solver"`
	// Kind is the solver's guarantee class: exact | approximate |
	// heuristic.
	Kind string `json:"kind,omitempty"`
	Size int    `json:"size"`
	// Cost is Ψ(M), the summed pair distance.
	Cost  float64 `json:"cost"`
	Pairs []Pair  `json:"pairs,omitempty"`
	// ErrorBound bounds Ψ(M) − Ψ(M_CCA) for approximate solvers.
	ErrorBound float64 `json:"error_bound,omitempty"`
	// Cached reports a result served from the engine's cross-instance
	// result cache.
	Cached bool `json:"cached,omitempty"`
	// WallNS / QueueWaitNS are the solve's own wall time and the time
	// it waited for a worker, in nanoseconds.
	WallNS      int64 `json:"wall_ns"`
	QueueWaitNS int64 `json:"queue_wait_ns"`
	// Worker is the pool worker that ran the instance (-1 = never ran).
	Worker int    `json:"worker"`
	Error  string `json:"error,omitempty"`
}

// Fleet aggregates one solve request's instances (the wire form of
// cca.FleetMetrics).
type Fleet struct {
	Instances   int     `json:"instances"`
	Solved      int     `json:"solved"`
	Errors      int     `json:"errors"`
	Pairs       int     `json:"pairs"`
	Cost        float64 `json:"cost"`
	CacheHits   int     `json:"cache_hits"`
	WallNS      int64   `json:"wall_ns"`
	SolveWallNS int64   `json:"solve_wall_ns"`
	// QueueWaitNS is the mean per-instance queue wait (the mean of
	// QueueWaitHist; it was a Σ before the histogram existed — the sum
	// is QueueWaitHist.Sum seconds).
	QueueWaitNS int64 `json:"queue_wait_ns"`
	// QueueWaitHist is the distribution of per-instance queue waits in
	// seconds.
	QueueWaitHist *Histogram `json:"queue_wait_hist,omitempty"`
	// Faults / IONS carry the paper's fault accounting for the request:
	// buffer faults across the solved (non-cached) instances and the
	// simulated I/O time they cost at 10 ms per fault, in nanoseconds.
	Faults int   `json:"faults"`
	IONS   int64 `json:"io_ns"`
}

// SolveResponse is the buffered response of POST /v1/solve. Streamed
// responses (?stream=ndjson or ?stream=sse) deliver the same
// InstanceResult values one by one in completion order, then one final
// Fleet.
type SolveResponse struct {
	Results []InstanceResult `json:"results"`
	Fleet   Fleet            `json:"fleet"`
	// Trace is the request's completed span tree, present only when the
	// request asked for it (trace=1 or SolveRequest.Trace).
	Trace *TraceSpan `json:"trace,omitempty"`
}

// StreamEnvelope is one NDJSON line of a streamed solve response:
// exactly one field is set — Result for each completed instance (in
// completion order), then Fleet on the final line.
type StreamEnvelope struct {
	Result *InstanceResult `json:"result,omitempty"`
	Fleet  *Fleet          `json:"fleet,omitempty"`
	// Trace rides on the final (fleet) envelope of a traced request.
	Trace *TraceSpan `json:"trace,omitempty"`
}

// SessionRequest is the body of POST /v1/sessions: the provider set an
// online session assigns arriving customers to.
type SessionRequest struct {
	Providers []Provider `json:"providers"`
	// ReoptBudget bounds the repair work amortized per churn event
	// (departures and resizes): at most this many improving cycle
	// cancels run before the event returns, deferring the rest. 0 (the
	// default) means unlimited — every event leaves the exact optimum.
	ReoptBudget int `json:"reopt_budget,omitempty"`
	// Metric selects the session's distance backend with the same wire
	// encoding as Instance: "" or "euclidean", or "network" with
	// NetGrid/NetSeed (defaults 32/2008) and the NetLandmarks / NetCH
	// knobs. The session shares the server's per-network metric memo
	// with batch solves, and every incremental assignment measures
	// shortest-path distance over that road network.
	Metric       string `json:"metric,omitempty"`
	NetGrid      int    `json:"net_grid,omitempty"`
	NetSeed      int64  `json:"net_seed,omitempty"`
	NetLandmarks int    `json:"net_landmarks,omitempty"`
	NetCH        int    `json:"net_ch,omitempty"`
}

// SessionInfo describes a created session.
type SessionInfo struct {
	ID string `json:"id"`
	// Capacity is Γ = Σ provider capacities — the maximum matching size.
	Capacity int `json:"capacity"`
	// Persisted reports whether the session is backed by a write-ahead
	// log (the server runs with -state-dir) and survives a restart.
	Persisted bool `json:"persisted,omitempty"`
}

// ArriveRequest is the body of POST /v1/sessions/{id}/arrive.
type ArriveRequest struct {
	ID int64   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// ArriveResponse reports an arrival's effect. Matched says whether this
// customer holds a slot right now; later arrivals may re-route or evict
// it (poll GET /v1/sessions/{id}/matching for the current state).
type ArriveResponse struct {
	Matched  bool    `json:"matched"`
	Size     int     `json:"size"`
	Cost     float64 `json:"cost"`
	Arrivals int     `json:"arrivals"`
}

// DepartRequest is the body of POST /v1/sessions/{id}/depart.
type DepartRequest struct {
	ID int64 `json:"id"`
}

// DepartResponse reports a departure's effect. WasMatched says whether
// the customer held a slot at the moment it left.
type DepartResponse struct {
	WasMatched bool    `json:"was_matched"`
	Size       int     `json:"size"`
	Cost       float64 `json:"cost"`
	// Live is the number of customers still present.
	Live int `json:"live"`
}

// ResizeRequest is the body of POST /v1/sessions/{id}/resize: set
// provider Provider's capacity to Cap (>= 0; 0 takes the provider
// offline, evicting and re-routing its assignees).
type ResizeRequest struct {
	Provider int `json:"provider"`
	Cap      int `json:"cap"`
}

// ResizeResponse reports a resize's effect on the matching and the
// session's total capacity.
type ResizeResponse struct {
	Size int     `json:"size"`
	Cost float64 `json:"cost"`
	// Capacity is the new Γ = Σ provider capacities.
	Capacity int `json:"capacity"`
}

// MatchingResponse is the body of GET /v1/sessions/{id}/matching.
type MatchingResponse struct {
	Size  int     `json:"size"`
	Cost  float64 `json:"cost"`
	Pairs []Pair  `json:"pairs"`
}

// DatasetInfo describes one server-side named dataset.
type DatasetInfo struct {
	Name string `json:"name"`
	// Customers is the indexed point count (-1 when the dataset exists
	// on disk but has not been loaded yet).
	Customers int `json:"customers"`
	// Resident reports whether the dataset is currently indexed (its
	// R-tree pages reachable through the buffer manager).
	Resident bool `json:"resident"`
	// Pages / PageSize / Bytes describe the dataset's page store when
	// resident: total R-tree pages, the page size, and their product.
	Pages    int   `json:"pages,omitempty"`
	PageSize int   `json:"page_size,omitempty"`
	Bytes    int64 `json:"bytes,omitempty"`
	// ResidentPages / BufferPages are the LRU buffer's current fill and
	// capacity on the primary handle (solves run on clones with their
	// own cold buffers; see Faults for their accounting).
	ResidentPages int `json:"resident_pages,omitempty"`
	BufferPages   int `json:"buffer_pages,omitempty"`
	// Faults / IONS accumulate the paper's fault accounting across every
	// non-cached solve that used this dataset: buffer faults and the
	// simulated I/O time they cost (10 ms per fault), in nanoseconds.
	Faults uint64 `json:"faults,omitempty"`
	IONS   int64  `json:"io_ns,omitempty"`
}

// DatasetEvictResponse is the body of DELETE /v1/datasets/{name}. The
// dataset's CSV (and rebuilt page file) stay on disk; eviction drops the
// in-memory index so the next query reloads cold, re-paying its faults.
type DatasetEvictResponse struct {
	Name string `json:"name"`
	// WasResident reports whether an in-memory index was actually
	// dropped (false when the dataset existed but was not loaded).
	WasResident bool `json:"was_resident"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
