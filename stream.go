package cca

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/solver"
)

// Submit enqueues one instance on the engine's scheduler and returns a
// 1-buffered channel that receives exactly one InstanceResult and is
// then closed. Submission never blocks: a nil Customers, a closed
// engine, or an already-dead context produce an immediate error result.
// Once running, the solve observes ctx between augmenting iterations,
// so cancelling returns an InstanceResult whose Err is ctx.Err() without
// computing the matching to completion.
//
//	ch := engine.Submit(ctx, cca.Instance{Providers: q, Customers: p})
//	res := <-ch
func (e *Engine) Submit(ctx context.Context, in Instance) <-chan InstanceResult {
	return e.submit(ctx, in, 0)
}

// RunStream feeds a channel of instances through the scheduler and
// streams results back in completion order. Instances are indexed in
// arrival order (InstanceResult.Index). The result channel closes once
// every accepted instance has reported; the consumer must drain it.
// When ctx dies, RunStream stops accepting new instances (the producer
// should stop sending), already-queued instances report ctx.Err()
// without solving, and in-flight solves return between augmenting
// iterations.
func (e *Engine) RunStream(ctx context.Context, instances <-chan Instance) <-chan InstanceResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan InstanceResult)
	go func() {
		defer close(out)
		var wg sync.WaitGroup
		idx := 0
	feed:
		for {
			select {
			case <-ctx.Done():
				break feed // stop scheduling new instances
			case in, ok := <-instances:
				if !ok {
					break feed
				}
				ch := e.submit(ctx, in, idx)
				idx++
				wg.Add(1)
				go func() {
					defer wg.Done()
					out <- <-ch
				}()
			}
		}
		wg.Wait()
	}()
	return out
}

// submit is the engine's single enqueue path: Run, RunStream, and
// Submit all funnel through it.
func (e *Engine) submit(ctx context.Context, in Instance, idx int) <-chan InstanceResult {
	if ctx == nil {
		ctx = context.Background()
	}
	ch := make(chan InstanceResult, 1)
	deliver := func(r InstanceResult) {
		ch <- r
		close(ch)
	}
	base := InstanceResult{Index: idx, Label: in.Label, Solver: e.solverFor(in), Worker: -1}
	if in.Customers == nil {
		base.Err = fmt.Errorf("cca: engine: instance %d has nil Customers", idx)
		deliver(base)
		return ch
	}
	// Fail fast instead of queueing work that cannot run: a Submit with
	// an already-cancelled context returns promptly.
	if err := ctx.Err(); err != nil {
		base.Err = err
		deliver(base)
		return ch
	}
	pool := e.service()
	if pool == nil {
		base.Err = ErrEngineClosed
		deliver(base)
		return ch
	}
	// The queue span covers scheduler dispatch: Submit → a worker picks
	// the task up. It ends inside the task, stamped with the lane and the
	// worker that ran it.
	qspan := obs.FromContext(ctx).StartChild("queue")
	err := pool.Submit(ctx, in.Lane, func(ctx context.Context, info sched.TaskInfo) {
		qspan.SetStr("lane", info.Lane.String())
		qspan.SetInt("worker", int64(info.Worker))
		qspan.End()
		r := e.runOne(ctx, idx, in)
		r.Worker = info.Worker
		r.QueueWait = info.QueueWait
		deliver(r)
	})
	if err != nil {
		qspan.End()
		base.Err = ErrEngineClosed
		deliver(base)
	}
	return ch
}

// runOne executes a single instance on its own dataset handle, serving
// repeats from the result cache. The named return matters: the deferred
// Wall stamp must land on the value the caller receives.
func (e *Engine) runOne(ctx context.Context, idx int, in Instance) (out InstanceResult) {
	out = InstanceResult{Index: idx, Label: in.Label, Solver: e.solverFor(in)}
	begin := time.Now()
	defer func() { out.Wall = time.Since(begin) }()

	ctx, span := obs.Start(ctx, "solve")
	defer span.End()

	// A queued instance whose context died before a worker picked it up
	// reports the cancellation without touching the dataset.
	if err := ctx.Err(); err != nil {
		out.Err = err
		return out
	}
	s, err := solver.Get(out.Solver)
	if err != nil {
		out.Err = fmt.Errorf("cca: engine: instance %d (%s): %w", idx, out.Solver, err)
		return out
	}
	out.Solver = s.Name() // canonicalize aliases/casing ("SM" → "greedy")
	span.SetStr("solver", out.Solver)

	key, cacheable := e.resultKeyFor(s.Name(), in)
	if cacheable {
		if res, ok := e.cache.Get(key); ok {
			out.Result = res
			out.Cached = true
			span.SetInt("cached", 1)
			return out
		}
	}
	span.SetInt("cached", 0)

	// Inject the engine's shared bulk distance table, after the cache key
	// is fixed (the key must identify the underlying network metric, not
	// the table wrapping it). The solver registry sees a *netmetric.Table
	// already in place and skips its own per-solve build.
	if t := e.sharedTable(in); t != nil {
		in.Options.Core.Metric = t
	}

	handle, err := in.Customers.Clone()
	if err != nil {
		out.Err = fmt.Errorf("cca: engine: instance %d: clone dataset: %w", idx, err)
		return out
	}
	defer handle.Close()

	res, err := s.Solve(ctx, in.Providers, handle, in.Options)
	if err != nil {
		out.Err = fmt.Errorf("cca: engine: instance %d (%s): %w", idx, out.Solver, err)
		return out
	}
	out.Result = res
	if cacheable {
		e.cache.Put(key, res)
	}
	return out
}

// resultKey identifies a solve for the cross-instance result cache.
// The dataset field is the Customers' process-unique identity (shared
// by clones, never by distinct datasets) and the metric rides along as
// an interface value, so two instances hit the same entry only when
// they read the same data, measure with the same metric instance, and
// hash to the same instance digest.
type resultKey struct {
	dataset uint64
	metric  geo.Metric
	digest  [32]byte
}

// resultKeyFor builds an instance's cache key. The second return is
// false when the instance cannot be cached safely or usefully: caching
// disabled, the instance opted out (NoCache), options carrying an
// opaque function (CustomerCap) whose behaviour the digest cannot
// observe, or a metric whose dynamic type cannot be a map key (the key
// embeds the interface value; hashing a non-comparable type would
// panic).
func (e *Engine) resultKeyFor(canonical string, in Instance) (resultKey, bool) {
	if e.cache == nil || in.NoCache || in.Options.Core.CustomerCap != nil {
		return resultKey{}, false
	}
	// reflect.Value.Comparable checks the value, not just its type: a
	// comparable struct type can still hold a non-comparable value in an
	// interface-typed field, and hashing that would panic.
	if m := in.Options.Core.Metric; m != nil && !reflect.ValueOf(m).Comparable() {
		return resultKey{}, false
	}
	h := sha256.New()
	var scratch [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	putF := func(f float64) { put64(math.Float64bits(f)) }
	putBool := func(b bool) {
		if b {
			put64(1)
		} else {
			put64(0)
		}
	}
	h.Write([]byte(canonical))
	h.Write([]byte{0})
	put64(uint64(len(in.Providers)))
	for _, q := range in.Providers {
		putF(q.Pt.X)
		putF(q.Pt.Y)
		put64(uint64(int64(q.Cap)))
	}
	o := in.Options
	putF(o.Delta)
	put64(uint64(int64(o.Refinement)))
	putF(o.Core.Theta)
	putBool(o.Core.DisablePUA)
	putBool(o.Core.DisableTheorem2)
	putBool(o.Core.DisableANN)
	put64(uint64(int64(o.Core.ANNGroupSize)))
	putF(o.Core.Space.Min.X)
	putF(o.Core.Space.Min.Y)
	putF(o.Core.Space.Max.X)
	putF(o.Core.Space.Max.Y)
	put64(uint64(int64(o.Core.TotalCustomerCap)))
	put64(uint64(int64(o.Core.PairCapacity)))
	// Sharding knobs that change the matching. ShardWorkers is omitted
	// on purpose: it only alters wall-clock time (the sharded merge is
	// deterministic across worker counts — pinned by the determinism
	// suite), so instances differing only in it share a cache entry.
	// DistTable is omitted for the same reason: the bulk distance table
	// returns byte-identical values to point queries (pinned by the
	// network-backend conformance suite), so it never changes results.
	put64(uint64(int64(o.Core.Shards)))
	putF(o.Core.ShardBoundary)

	key := resultKey{dataset: in.Customers.id, metric: o.Core.Metric}
	h.Sum(key.digest[:0])
	return key, true
}
