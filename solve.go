package cca

import (
	"context"

	"repro/internal/solver"
)

// SolverKind classifies a solver's guarantee: exact, approximate (with
// a theoretical error bound) or heuristic.
type SolverKind = solver.Kind

// Solver guarantee classes.
const (
	SolverExact       = solver.Exact
	SolverApproximate = solver.Approximate
	SolverHeuristic   = solver.Heuristic
)

// SolverOptions tunes a registry solve: core algorithm options plus the
// approximate solvers' δ and refinement. The zero value selects every
// solver's paper defaults.
type SolverOptions = solver.Options

// SolverResult is the uniform result of a registry solve: the matching
// plus solver name, kind, and (for approximate solvers) the Theorem 3/4
// error bound and phase breakdown.
type SolverResult = solver.Result

// Solve runs the named solver from the registry on one CCA instance.
// Names are case-insensitive; see Solvers for what is available. Pass
// nil opts for the defaults.
//
//	res, err := cca.Solve("ca", providers, customers, nil)
//	if err == nil && res.Kind == cca.SolverApproximate {
//	    fmt.Println("within", res.ErrorBound, "of optimal")
//	}
func Solve(name string, providers []Provider, customers *Customers, opts *SolverOptions) (*SolverResult, error) {
	return SolveContext(context.Background(), name, providers, customers, opts)
}

// SolveContext is Solve with a caller-supplied context: the deadline or
// cancellation is checked before the solve starts and between the
// algorithm's augmenting iterations, so a cancelled solve returns
// ctx.Err() mid-run instead of computing to completion.
//
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	res, err := cca.SolveContext(ctx, "sspa", providers, customers, nil)
func SolveContext(ctx context.Context, name string, providers []Provider, customers *Customers, opts *SolverOptions) (*SolverResult, error) {
	s, err := solver.Get(name)
	if err != nil {
		return nil, err
	}
	var o SolverOptions
	if opts != nil {
		o = *opts
	}
	return s.Solve(ctx, providers, customers, o)
}

// Solvers returns the canonical names of every registered solver,
// sorted.
func Solvers() []string { return solver.Names() }

// SolversOfKind returns the sorted names of the registered solvers with
// the given guarantee class.
func SolversOfKind(k SolverKind) []string { return solver.ByKind(k) }

// DescribeSolvers returns one human-readable line per registered solver
// ("name (kind): description"), for help text.
func DescribeSolvers() []string { return solver.Describe() }
