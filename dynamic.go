package cca

import (
	"repro/internal/core"
	"repro/internal/geo"
)

// DynamicMatcher maintains a minimum-cost maximum matching as customers
// arrive one by one — the incremental-assignment extension referenced by
// the paper's related work ([11]) and future-work section. Each arrival
// is handled with a single shortest augmenting path (or, once capacity
// is exhausted, a single improving swap), so the matching after every
// prefix of arrivals is exactly what the batch solver would compute.
//
// It holds the bipartite graph in memory and is meant for online,
// moderate-|P| workloads; use Assign for the disk-resident batch setting.
type DynamicMatcher struct {
	m *core.DynamicMatcher
}

// NewDynamicMatcher starts an empty matching over the given providers.
func NewDynamicMatcher(providers []Provider) *DynamicMatcher {
	return &DynamicMatcher{m: core.NewDynamicMatcher(providers)}
}

// Arrive adds a customer and restores optimality. It reports whether the
// customer is matched right now (later arrivals may re-route or evict
// it).
func (d *DynamicMatcher) Arrive(pt Point, id int64) (bool, error) {
	return d.m.Arrive(geo.Point{X: pt.X, Y: pt.Y}, id)
}

// Matching returns the current optimal matching.
func (d *DynamicMatcher) Matching() *Result { return d.m.Matching() }

// Size returns the current matching size.
func (d *DynamicMatcher) Size() int { return d.m.Size() }

// Cost returns the current Ψ(M).
func (d *DynamicMatcher) Cost() float64 { return d.m.Cost() }
