package cca

import (
	"repro/internal/core"
	"repro/internal/geo"
)

// Sentinel errors of the dynamic event API, for errors.Is branching.
// The ccad session endpoints map them to HTTP 409 and 404.
var (
	// ErrDuplicateID rejects an arrival whose customer id was ever seen
	// before in the session, including ids that have already departed.
	ErrDuplicateID = core.ErrDuplicateID
	// ErrUnknownID rejects a departure of an id that is not currently
	// present, and a resize of a provider index out of range.
	ErrUnknownID = core.ErrUnknownID
)

// DynamicOptions configures a DynamicMatcher beyond the zero-value
// behavior (Euclidean metric, unlimited re-optimization, no periodic
// oracle).
type DynamicOptions struct {
	// Metric is the distance backend (nil selects Euclidean).
	Metric Metric
	// ReoptBudget bounds the repair work amortized per event: after an
	// event's mandatory fix-ups — the arrival's own augmenting path or
	// swap, a departure's capacity release, a resize's evictions, and
	// the augmentations that keep the matching maximum — at most this
	// many negative residual cycles are canceled before the event
	// returns; remaining debt carries to later events. 0 means
	// unlimited: every event leaves a minimum-cost maximum matching.
	// The matching stays feasible and maximum under any budget; only
	// cost optimality drifts, which Stats tracks.
	ReoptBudget int
	// OracleEvery, when positive, re-solves the live instance from
	// scratch every n events and records the cost drift in Stats. The
	// oracle is a Bellman–Ford full solve — a measurement tool, not a
	// production setting.
	OracleEvery int
}

// ChurnStats counts a matcher's event history and the quality drift
// its re-optimization budget allowed.
type ChurnStats = core.ChurnStats

// DynamicMatcher maintains a minimum-cost maximum matching under the
// full churn model — customer arrivals and departures plus provider
// capacity resizes — the incremental-assignment extension referenced
// by the paper's related work ([11]) and future-work section. With an
// unlimited re-opt budget the matching after every event is exactly
// what the batch solver would compute on the live instance; with a
// bounded budget it stays feasible and maximum while cost optimality
// drifts within the repair debt the budget deferred.
//
// It holds the bipartite graph in memory and is meant for online,
// moderate-|Q| workloads; use Assign for the disk-resident batch
// setting.
type DynamicMatcher struct {
	m *core.DynamicMatcher
}

// NewDynamicMatcher starts an empty matching over the given providers
// with default options (Euclidean, unlimited re-optimization).
func NewDynamicMatcher(providers []Provider) *DynamicMatcher {
	return NewDynamicMatcherOpts(providers, DynamicOptions{})
}

// NewDynamicMatcherOpts starts an empty matching with explicit
// options. The provider slice is copied: ResizeProvider mutates the
// matcher's view, never the caller's.
func NewDynamicMatcherOpts(providers []Provider, opts DynamicOptions) *DynamicMatcher {
	return &DynamicMatcher{m: core.NewDynamicMatcherOpts(providers, core.DynamicOptions{
		Metric:      opts.Metric,
		ReoptBudget: opts.ReoptBudget,
		OracleEvery: opts.OracleEvery,
	})}
}

// Arrive adds a customer and restores optimality. It reports whether
// the customer is matched right now (later events may re-route or
// evict it). Ids must be unique across the session; re-arriving a
// departed id is ErrDuplicateID.
func (d *DynamicMatcher) Arrive(pt Point, id int64) (bool, error) {
	return d.m.Arrive(geo.Point{X: pt.X, Y: pt.Y}, id)
}

// Depart removes a previously arrived customer, releasing any provider
// capacity it held, and repairs the matching. It returns whether the
// customer was matched at the moment it left. Departing an id that is
// not currently present is ErrUnknownID.
func (d *DynamicMatcher) Depart(id int64) (bool, error) {
	return d.m.Depart(id)
}

// ResizeProvider changes provider i's capacity. Shrinking below the
// provider's current usage evicts its costliest assignments (the
// evicted customers stay in the pool and are re-routed by the repair);
// growing opens augmenting opportunities for waiting customers. An
// index out of range is ErrUnknownID.
func (d *DynamicMatcher) ResizeProvider(i, newCap int) error {
	return d.m.ResizeProvider(i, newCap)
}

// Stats returns the event and repair counters accumulated so far.
func (d *DynamicMatcher) Stats() ChurnStats { return d.m.Stats() }

// Exact reports whether the current matching is known minimum-cost
// (no repair debt outstanding from budgeted events).
func (d *DynamicMatcher) Exact() bool { return d.m.Exact() }

// Live returns the number of customers currently present.
func (d *DynamicMatcher) Live() int { return d.m.Live() }

// Capacity returns the current total provider capacity.
func (d *DynamicMatcher) Capacity() int { return d.m.Capacity() }

// ProviderCap returns provider i's current capacity (after resizes).
func (d *DynamicMatcher) ProviderCap(i int) int { return d.m.ProviderCap(i) }

// OracleDrift re-solves the live instance from scratch and returns the
// relative cost drift of the incremental matching, recording it in
// Stats. Zero (to float noise) whenever Exact.
func (d *DynamicMatcher) OracleDrift() float64 { return d.m.OracleDrift() }

// Matching returns the current matching.
func (d *DynamicMatcher) Matching() *Result { return d.m.Matching() }

// Size returns the current matching size.
func (d *DynamicMatcher) Size() int { return d.m.Size() }

// Cost returns the current Ψ(M).
func (d *DynamicMatcher) Cost() float64 { return d.m.Cost() }
