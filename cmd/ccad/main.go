// Command ccad is the CCA assignment daemon: a long-lived HTTP/JSON
// service over one shared solving engine (cca.Engine). It exposes batch
// solving (POST /v1/solve, buffered or streamed), online sessions with
// incremental per-customer arrivals (POST /v1/sessions + /arrive), named
// datasets, Prometheus telemetry (GET /metrics), and graceful drain on
// SIGTERM.
//
//	ccad -addr :8080 -workers 8 -data ./datasets
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/solve -d '{"instances":[...]}'
//
// See the README's "Serving" section for the full walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	cca "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
		cache    = flag.Int("cache", 0, "result-cache capacity in entries (0 = default 256, negative disables)")
		solver   = flag.String("solver", "", `default solver for instances that name none ("" = ida)`)
		inflight = flag.Int("max-inflight", server.DefaultMaxInFlight, "admission bound on concurrent solve requests; excess load is shed with 429")
		sessions = flag.Int("max-sessions", server.DefaultMaxSessions, "bound on live online sessions")
		maxInst  = flag.Int("max-instances", server.DefaultMaxInstances, "bound on instances per solve request")
		maxArr   = flag.Int("max-arrivals", server.DefaultMaxArrivals, "bound on arrivals per session")
		timeout  = flag.Duration("timeout", 0, "default per-instance solve timeout (0 = none; requests may set timeout_ms per instance)")
		dataDir  = flag.String("data", "", "named-dataset directory (<name>.csv customer files, id,x,y rows)")
		stateDir = flag.String("state-dir", "", "durable-state directory: session WALs + snapshots and dataset page files; sessions survive restarts (\"\" = in-memory only)")
		ttl      = flag.Duration("session-ttl", 0, "idle-session TTL: checkpoint + unload (or drop, without -state-dir) sessions idle this long (0 = never)")
		snapEvry = flag.Int("snapshot-every", server.DefaultSnapshotEvery, "checkpoint a persisted session's live set every N WAL events")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "how long graceful shutdown waits for in-flight requests")
		debug    = flag.String("debug-addr", "", "loopback address for /debug/pprof/* (e.g. 127.0.0.1:6060; \"\" = disabled)")
		slowLog  = flag.Duration("slow-solve-threshold", 0, "log a structured warning for any solve slower than this (0 = disabled)")
	)
	flag.Parse()

	engine := &cca.Engine{Workers: *workers, DefaultSolver: *solver, CacheSize: *cache}
	srv, err := server.New(server.Config{
		Engine:             engine,
		MaxInFlight:        *inflight,
		MaxSessions:        *sessions,
		MaxInstances:       *maxInst,
		MaxArrivals:        *maxArr,
		DefaultTimeout:     *timeout,
		DataDir:            *dataDir,
		StateDir:           *stateDir,
		SessionTTL:         *ttl,
		SnapshotEvery:      *snapEvry,
		SlowSolveThreshold: *slowLog,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccad:", err)
		os.Exit(1)
	}
	if n := srv.RecoveredSessions(); n > 0 {
		fmt.Fprintf(os.Stderr, "ccad: recovered %d session(s) from %s\n", n, *stateDir)
	}

	if *debug != "" {
		if err := startDebugServer(*debug); err != nil {
			fmt.Fprintln(os.Stderr, "ccad:", err)
			os.Exit(1)
		}
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Solves stream for as long as they run; only bound the
		// header-read phase.
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ccad: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "ccad: %v: draining (max %v)\n", sig, *drain)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "ccad:", err)
		os.Exit(1)
	}

	// Graceful drain: stop admitting work, let in-flight requests finish,
	// then release the engine's workers.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ccad: shutdown:", err)
		httpSrv.Close()
	}
	// Close session WALs after in-flight requests drained — persisted
	// sessions checkpoint and reopen cleanly on the next boot.
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "ccad: close:", err)
	}
	engine.Close()
	fmt.Fprintln(os.Stderr, "ccad: drained, bye")
}

// startDebugServer serves /debug/pprof/* on a second listener. The
// profiler exposes heap contents and CPU samples, so the address must
// be loopback — the daemon refuses to put it on a routable interface.
// The mux is explicit (never http.DefaultServeMux) so the debug port
// carries pprof and nothing else.
func startDebugServer(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-debug-addr %q: %v", addr, err)
	}
	if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
		return fmt.Errorf("-debug-addr %q: must bind a loopback address (localhost or 127.0.0.1)", addr)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-debug-addr %q: %v", addr, err)
	}
	fmt.Fprintf(os.Stderr, "ccad: pprof on http://%s/debug/pprof/\n", ln.Addr())
	go func() {
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		if err := srv.Serve(ln); err != nil {
			fmt.Fprintln(os.Stderr, "ccad: debug server:", err)
		}
	}()
	return nil
}
