// Command ccagen generates CCA workloads: service providers (with
// capacities) and customers placed on a synthetic road network following
// the paper's recipe (§5.1: 80% of points in 10 dense clusters, 20%
// uniform, normalized [0,1000]² space).
//
// Output is CSV. Providers: x,y,capacity. Customers: id,x,y.
//
//	ccagen -providers q.csv -customers p.csv -nq 1000 -np 100000 -k 80
//	ccagen -customers p.csv -np 50000 -dist uniform -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/expr"
)

func main() {
	var (
		provPath = flag.String("providers", "", "output CSV for providers (empty: skip)")
		custPath = flag.String("customers", "", "output CSV for customers (empty: skip)")
		nq       = flag.Int("nq", 1000, "number of providers |Q|")
		np       = flag.Int("np", 100000, "number of customers |P|")
		k        = flag.Int("k", 80, "provider capacity")
		kLo      = flag.Int("klo", 0, "mixed capacities: lower bound (with -khi)")
		kHi      = flag.Int("khi", 0, "mixed capacities: upper bound")
		dist     = flag.String("dist", "clustered", `distribution: "clustered" or "uniform"`)
		seed     = flag.Int64("seed", 2008, "random seed")
		grid     = flag.Int("grid", 32, "road network grid size")
	)
	flag.Parse()

	if *provPath == "" && *custPath == "" {
		fmt.Fprintln(os.Stderr, "ccagen: nothing to do; pass -providers and/or -customers")
		os.Exit(2)
	}
	d := datagen.Clustered
	switch *dist {
	case "clustered", "C", "c":
	case "uniform", "U", "u":
		d = datagen.Uniform
	default:
		fmt.Fprintf(os.Stderr, "ccagen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	net := datagen.NewNetwork(*grid, expr.Space, *seed)

	if *provPath != "" {
		pts := net.Points(datagen.Config{N: *nq, Dist: d, Seed: *seed + 1})
		caps := datagen.Capacities(*nq, pick(*kLo, *k), pick(*kHi, *k), *seed+3)
		providers := make([]core.Provider, *nq)
		for i, p := range pts {
			providers[i] = core.Provider{Pt: p, Cap: caps[i]}
		}
		f, err := os.Create(*provPath)
		fatal(err)
		fatal(dataio.WriteProviders(f, providers))
		fatal(f.Close())
		fmt.Printf("wrote %d providers to %s\n", *nq, *provPath)
	}
	if *custPath != "" {
		pts := net.Points(datagen.Config{N: *np, Dist: d, Seed: *seed + 2})
		f, err := os.Create(*custPath)
		fatal(err)
		fatal(dataio.WriteCustomers(f, datagen.Items(pts)))
		fatal(f.Close())
		fmt.Printf("wrote %d customers to %s\n", *np, *custPath)
	}
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccagen:", err)
		os.Exit(1)
	}
}
