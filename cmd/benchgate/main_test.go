package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/expr"
)

// repoFile resolves a committed bench trajectory relative to this
// package (cmd/benchgate → repo root). The tests run against the real
// committed baselines, not fixtures: the gate's whole job is to read
// exactly what CI reads.
func repoFile(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join("..", "..", name)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	return path
}

// TestCommittedBaselinesPass gates the repo's own committed
// trajectories: whatever is checked in must pass its own gate, or CI
// would be red on an untouched tree.
func TestCommittedBaselinesPass(t *testing.T) {
	for _, name := range []string{"BENCH_net.json", "BENCH_shard.json", "BENCH_serve.json", "BENCH_churn.json"} {
		if msgs := gateFile(repoFile(t, name), 0.15); len(msgs) > 0 {
			t.Errorf("%s: committed baseline fails its own gate: %v", name, msgs)
		}
	}
}

// loadNetRuns parses the committed net trajectory.
func loadNetRuns(t *testing.T) []run {
	t.Helper()
	data, err := os.ReadFile(repoFile(t, "BENCH_net.json"))
	if err != nil {
		t.Fatal(err)
	}
	var runs []run
	if err := json.Unmarshal(data, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 || runs[0].Figures["net"] == nil {
		t.Fatal("BENCH_net.json carries no net figure")
	}
	return runs
}

// writeRuns marshals runs into a temp trajectory file.
func writeRuns(t *testing.T, runs []run) string {
	t.Helper()
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// mutateLatest deep-copies the committed baseline, appends a candidate
// run derived from it by f, and returns the trajectory path.
func mutateLatest(t *testing.T, f func(rows []expr.Row)) string {
	t.Helper()
	runs := loadNetRuns(t)
	base := runs[len(runs)-1]
	cand := run{Unix: base.Unix + 1, Scale: base.Scale, Metric: base.Metric,
		Shards: base.Shards, Workers: base.Workers, Figures: map[string][]expr.Row{}}
	rows := append([]expr.Row(nil), base.Figures["net"]...)
	f(rows)
	cand.Figures["net"] = rows
	return writeRuns(t, append(runs, cand))
}

// TestIdenticalCandidatePasses appends a byte-identical rerun: the gate
// must accept a candidate whose ratios match the baseline exactly.
func TestIdenticalCandidatePasses(t *testing.T) {
	path := mutateLatest(t, func([]expr.Row) {})
	if msgs := gateFile(path, 0.15); len(msgs) > 0 {
		t.Errorf("identical candidate rejected: %v", msgs)
	}
}

// TestAugmentsColumnCompatibility: the Augments column (added with the
// tracing work) must be invisible to the gate. A candidate run that
// carries it gates cleanly against a committed baseline that predates
// it, and legacy JSON without the field decodes to zero rather than
// erroring.
func TestAugmentsColumnCompatibility(t *testing.T) {
	path := mutateLatest(t, func(rows []expr.Row) {
		for i := range rows {
			rows[i].Augments = 1000 + i
		}
	})
	if msgs := gateFile(path, 0.15); len(msgs) > 0 {
		t.Errorf("candidate with Augments column rejected against pre-column baseline: %v", msgs)
	}

	var legacy expr.Row
	if err := json.Unmarshal([]byte(`{"Label":"alt","Algo":"ida","Size":10,"Cost":1.5}`), &legacy); err != nil {
		t.Fatalf("legacy row without Augments failed to decode: %v", err)
	}
	if legacy.Augments != 0 {
		t.Errorf("missing Augments decoded to %d, want 0", legacy.Augments)
	}

	var modern expr.Row
	if err := json.Unmarshal([]byte(`{"Label":"alt","Algo":"ida","Augments":42}`), &modern); err != nil {
		t.Fatalf("row with Augments failed to decode: %v", err)
	}
	if modern.Augments != 42 {
		t.Errorf("Augments round-trip got %d, want 42", modern.Augments)
	}
}

// TestInflatedCPUFails slows the candidate's alt and table rows 3x
// relative to the run's own reference row — the machine-independent
// shape regression the gate exists to catch.
func TestInflatedCPUFails(t *testing.T) {
	path := mutateLatest(t, func(rows []expr.Row) {
		for i := range rows {
			if rows[i].Label == "alt" || rows[i].Label == "table" {
				rows[i].CPU *= 3
			}
		}
	})
	msgs := gateFile(path, 0.15)
	if len(msgs) == 0 {
		t.Fatal("3x normalized CPU regression passed the gate")
	}
	if !containsAll(msgs, "alt", "table") {
		t.Errorf("findings name neither inflated row: %v", msgs)
	}
}

// TestUniformSlowdownPasses scales *every* CPU (the reference row too)
// by 4x — a slower machine, not a regression. Normalization must
// absorb it.
func TestUniformSlowdownPasses(t *testing.T) {
	path := mutateLatest(t, func(rows []expr.Row) {
		for i := range rows {
			rows[i].CPU *= 4
		}
	})
	if msgs := gateFile(path, 0.15); len(msgs) > 0 {
		t.Errorf("uniform 4x slowdown (machine speed) rejected: %v", msgs)
	}
}

// TestCostDriftFails perturbs a deterministic field: the solve result
// changed, which is never acceptable for a perf-only commit.
func TestCostDriftFails(t *testing.T) {
	path := mutateLatest(t, func(rows []expr.Row) {
		for i := range rows {
			if rows[i].Label == "table" {
				rows[i].Cost *= 1.0001
			}
		}
	})
	msgs := gateFile(path, 0.15)
	if len(msgs) == 0 {
		t.Fatal("cost drift passed the gate")
	}
	if !containsAll(msgs, "cost") {
		t.Errorf("findings do not mention cost: %v", msgs)
	}
}

// TestSpeedupFloor drops the table row's speedup under 3x: the gate
// must enforce the floor even with no prior run to diff against.
func TestSpeedupFloor(t *testing.T) {
	runs := loadNetRuns(t)
	last := runs[len(runs)-1]
	rows := append([]expr.Row(nil), last.Figures["net"]...)
	var bidi int64
	for _, r := range rows {
		if r.Label == "bidi" {
			bidi = int64(r.CPU)
		}
	}
	for i := range rows {
		if rows[i].Label == "table" {
			rows[i].CPU = time.Duration(bidi / 2) // 2x < 3x floor
		}
	}
	last.Figures = map[string][]expr.Row{"net": rows}
	path := writeRuns(t, []run{last})
	msgs := gateFile(path, 0.15)
	if len(msgs) == 0 {
		t.Fatal("sub-floor table speedup passed the gate")
	}
	if !containsAll(msgs, "floor") {
		t.Errorf("findings do not mention the floor: %v", msgs)
	}
}

// TestCHQueryFloor drops the ch row's cold point-query speedup under
// 3x: the per-query floor must fire even when every row CPU is
// healthy, and must stay silent for runs predating the QueryNS column.
func TestCHQueryFloor(t *testing.T) {
	runs := loadNetRuns(t)
	last := runs[len(runs)-1]
	rows := append([]expr.Row(nil), last.Figures["net"]...)
	for i := range rows {
		switch rows[i].Label {
		case "alt":
			rows[i].QueryNS = 300 * time.Microsecond
		case "ch":
			rows[i].QueryNS = 200 * time.Microsecond // 1.5x < 3x floor
		}
	}
	last.Figures = map[string][]expr.Row{"net": rows}
	msgs := gateFile(writeRuns(t, []run{last}), 0.15)
	if len(msgs) == 0 {
		t.Fatal("sub-floor ch point-query speedup passed the gate")
	}
	if !containsAll(msgs, "ch", "floor") {
		t.Errorf("findings do not name the ch floor: %v", msgs)
	}

	for i := range rows {
		rows[i].QueryNS = 0 // legacy run: column absent
	}
	last.Figures = map[string][]expr.Row{"net": rows}
	if msgs := gateFile(writeRuns(t, []run{last}), 0.15); len(msgs) > 0 {
		t.Errorf("legacy run without QueryNS rejected: %v", msgs)
	}
}

// churnRows is a healthy churn figure: exact row driftless, budget
// rows under the ceiling, all sizes equal.
func churnRows() []expr.Row {
	return []expr.Row{
		{Label: "exact", Algo: "dynamic", CPU: 80 * time.Millisecond, Cost: 5010.7, Size: 21, Quality: 3e-16, Esub: 120, KeyUpd: 300},
		{Label: "budget=1", Algo: "dynamic", CPU: 60 * time.Millisecond, Cost: 5010.7, Size: 21, Quality: 0.004, Esub: 100, KeyUpd: 300, Faults: 90},
		{Label: "budget=8", Algo: "dynamic", CPU: 70 * time.Millisecond, Cost: 5010.7, Size: 21, Quality: 0.001, Esub: 118, KeyUpd: 300, Faults: 2},
	}
}

// TestChurnGatePasses: a healthy churn run has no findings.
func TestChurnGatePasses(t *testing.T) {
	if msgs := gateChurn(churnRows()); len(msgs) > 0 {
		t.Errorf("healthy churn rows rejected: %v", msgs)
	}
}

// TestChurnDriftCeilingFails: a budgeted row drifting past the
// documented 10% bound is a correctness regression, not noise.
func TestChurnDriftCeilingFails(t *testing.T) {
	rows := churnRows()
	rows[1].Quality = 0.12
	msgs := gateChurn(rows)
	if len(msgs) == 0 {
		t.Fatal("drift above the ceiling passed the gate")
	}
	if !containsAll(msgs, "budget=1", "ceiling") {
		t.Errorf("findings do not name the drifted row: %v", msgs)
	}
}

// TestChurnExactDriftFails: the unlimited-budget row must track the
// oracle exactly — any drift there means the repair loop is broken.
func TestChurnExactDriftFails(t *testing.T) {
	rows := churnRows()
	rows[0].Quality = 1e-4
	msgs := gateChurn(rows)
	if len(msgs) == 0 {
		t.Fatal("exact-row drift passed the gate")
	}
	if !containsAll(msgs, "exact") {
		t.Errorf("findings do not mention the exact row: %v", msgs)
	}
}

// TestChurnSizeDivergenceFails: budgets bound only cost repair;
// augmentation never defers, so sizes must agree across rows.
func TestChurnSizeDivergenceFails(t *testing.T) {
	rows := churnRows()
	rows[2].Size = 20
	msgs := gateChurn(rows)
	if len(msgs) == 0 {
		t.Fatal("size divergence passed the gate")
	}
	if !containsAll(msgs, "budget=8", "size") {
		t.Errorf("findings do not name the diverged row: %v", msgs)
	}
}

// TestChurnMissingExactRowFails: without the budget-0 reference the
// figure cannot be gated at all.
func TestChurnMissingExactRowFails(t *testing.T) {
	rows := churnRows()[1:]
	if msgs := gateChurn(rows); len(msgs) == 0 {
		t.Fatal("churn figure without an exact row passed the gate")
	}
}

func containsAll(msgs []string, subs ...string) bool {
	joined := strings.Join(msgs, "\n")
	for _, s := range subs {
		if !strings.Contains(joined, s) {
			return false
		}
	}
	return true
}
