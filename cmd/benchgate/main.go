// Command benchgate is the CI perf-regression gate over the committed
// bench trajectories (BENCH_shard.json, BENCH_net.json,
// BENCH_churn.json, and the BENCH_serve.json serve rows). It reads
// each trajectory, compares the
// latest run against its baseline run, and exits non-zero when either
//
//   - a deterministic field drifted — Cost beyond float round-trip
//     noise, matching Size, or subgraph |Esub| — which means a change
//     altered results, not just speed; or
//   - a performance ratio regressed beyond -tol (default 15%).
//
// Raw CPU times are machine-dependent, so the gate never compares
// nanoseconds across runs. It compares *shapes*: within one run every
// row's CPU is normalized by the run's own reference row (the first row
// of the figure — "serial" for the shard sweep, "euclid" for the net
// sweep), and only those ratios are compared across runs. A machine
// twice as fast shifts every row equally and passes; an ALT search that
// got 20% slower relative to the Euclidean floor fails on any machine.
//
// The net sweep additionally carries two absolute floors: the distance
// table must keep a >= 3x cold-solve speedup over the legacy
// bidirectional-Dijkstra baseline, and the contraction hierarchy must
// keep a >= 3x cold point-query speedup over ALT (the QueryNS column)
// — the ratios each optimization was merged on (see BENCH_net.json).
// The churn sweep carries absolute
// invariants of its own: the unlimited-budget row must track the full
// re-solve oracle exactly, every budgeted row's worst observed drift
// must stay under the documented 10% ceiling, and all rows must agree
// on matching size (re-opt budgets defer cost repair, never
// augmentation).
//
// Usage:
//
//	benchgate [-tol 0.15] BENCH_net.json BENCH_shard.json BENCH_serve.json BENCH_churn.json
//
// A trajectory with a single run gates only its internal invariants
// (determinism across rows, the net floor); appended runs — ccabench
// -json appends, never overwrites — are gated against the earliest
// compatible run (same scale, metric, shards), so the committed file
// *is* the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/expr"
)

// run mirrors ccabench's trajectoryRun (one element of a figure
// trajectory file).
type run struct {
	Unix    int64                 `json:"unix"`
	Scale   float64               `json:"scale"`
	Metric  string                `json:"metric"`
	Shards  int                   `json:"shards"`
	Workers int                   `json:"workers"`
	Figures map[string][]expr.Row `json:"figures"`
}

// serveRow mirrors ccabench's serve trajectory row (only the gated
// fields).
type serveRow struct {
	Unix     int64 `json:"unix"`
	Requests int   `json:"requests"`
	OK       int   `json:"ok"`
	Errors   int   `json:"errors"`
}

// netFloorSpeedup is the absolute invariant of the net sweep: the
// "table" backend's cold-solve speedup over the "bidi" baseline row.
const netFloorSpeedup = 3.0

// chQueryFloorSpeedup is the absolute invariant the contraction
// hierarchy was merged on: CH cold point queries must stay >= 3x
// faster than ALT cold point queries (the QueryNS column of the net
// sweep). The floor is on per-query latency, not on row CPU — the
// solve rows share the assignment solver's own work, which Amdahl-caps
// any end-to-end ratio regardless of how fast the backend gets. Runs
// predating the QueryNS column (both values zero) skip the check.
const chQueryFloorSpeedup = 3.0

// churnDriftCeiling is the documented drift bound of the churn sweep:
// no re-opt budget >= 1 may let the incremental matching's cost drift
// beyond 10% of the full re-solve optimum at any oracle check (README
// "Online matching"; internal/core pins the same constant in its
// conformance suite).
const churnDriftCeiling = 0.10

func main() {
	tol := flag.Float64("tol", 0.15, "allowed relative regression of any normalized CPU ratio")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-tol 0.15] BENCH_*.json...")
		os.Exit(2)
	}
	failures := 0
	for _, path := range flag.Args() {
		for _, msg := range gateFile(path, *tol) {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %s\n", path, msg)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL (%d finding(s))\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// gateFile checks one trajectory file and returns its findings.
func gateFile(path string, tol float64) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	// Figure trajectories and serve trajectories are both JSON arrays;
	// tell them apart by the presence of "figures" in the first element.
	var runs []run
	if err := json.Unmarshal(data, &runs); err == nil && len(runs) > 0 && runs[0].Figures != nil {
		return gateFigures(runs, tol)
	}
	var rows []serveRow
	if err := json.Unmarshal(data, &rows); err == nil && len(rows) > 0 {
		return gateServe(rows)
	}
	// A legacy single-run object (pre-append format) still gates its
	// internal invariants.
	var one run
	if err := json.Unmarshal(data, &one); err == nil && one.Figures != nil {
		return gateFigures([]run{one}, tol)
	}
	return []string{"unrecognized trajectory format"}
}

// gateFigures gates the latest run of a figure trajectory against the
// earliest compatible baseline run.
func gateFigures(runs []run, tol float64) []string {
	cand := runs[len(runs)-1]
	var msgs []string
	for name, rows := range cand.Figures {
		msgs = append(msgs, gateInternal(name, rows)...)
	}
	base, ok := baselineFor(runs, cand)
	if !ok {
		return msgs
	}
	for name, crows := range cand.Figures {
		brows, ok := base.Figures[name]
		if !ok {
			continue
		}
		msgs = append(msgs, compareFigure(name, brows, crows, tol)...)
	}
	return msgs
}

// baselineFor picks the earliest prior run comparable to cand (same
// scale, metric and shard setting — ratios across different workloads
// mean nothing).
func baselineFor(runs []run, cand run) (run, bool) {
	for _, r := range runs[:len(runs)-1] {
		if r.Scale == cand.Scale && r.Metric == cand.Metric && r.Shards == cand.Shards {
			return r, true
		}
	}
	return run{}, false
}

// gateInternal checks one run's own invariants: the net sweep's
// backend rows must agree on the matching (same Size; Cost equal to
// float round-trip noise) and hold the table-speedup floor; the churn
// sweep's budget rows must agree on matching size (augmentation is
// never budgeted), its exact row must show no drift, and every
// budgeted row must hold the drift ceiling.
func gateInternal(name string, rows []expr.Row) []string {
	if name == "churn" {
		return gateChurn(rows)
	}
	var msgs []string
	if name != "net" {
		return nil
	}
	byLabel := map[string]expr.Row{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	// dijkstra, alt and table are byte-identical by contract; bidi sums
	// the same paths in a different order, so it agrees to rounding.
	if ref, ok := byLabel["dijkstra"]; ok {
		for _, lbl := range []string{"alt", "ch", "table"} {
			if r, ok := byLabel[lbl]; ok && (r.Cost != ref.Cost || r.Size != ref.Size || r.Esub != ref.Esub) {
				msgs = append(msgs, fmt.Sprintf("net: %s diverged from dijkstra: cost %v vs %v, size %d vs %d, esub %d vs %d",
					lbl, r.Cost, ref.Cost, r.Size, ref.Size, r.Esub, ref.Esub))
			}
		}
		if b, ok := byLabel["bidi"]; ok && relDiff(b.Cost, ref.Cost) > 1e-9 {
			msgs = append(msgs, fmt.Sprintf("net: bidi cost %v vs dijkstra %v beyond rounding", b.Cost, ref.Cost))
		}
	}
	bidi, okB := byLabel["bidi"]
	tab, okT := byLabel["table"]
	if okB && okT && tab.CPU > 0 {
		if speedup := float64(bidi.CPU) / float64(tab.CPU); speedup < netFloorSpeedup {
			msgs = append(msgs, fmt.Sprintf("net: table speedup %.2fx over bidi below the %.0fx floor", speedup, netFloorSpeedup))
		}
	}
	alt, okA := byLabel["alt"]
	ch, okC := byLabel["ch"]
	if okA && okC && alt.QueryNS > 0 && ch.QueryNS > 0 {
		if speedup := float64(alt.QueryNS) / float64(ch.QueryNS); speedup < chQueryFloorSpeedup {
			msgs = append(msgs, fmt.Sprintf("net: ch cold point query %.2fx over alt below the %.0fx floor (alt %v, ch %v)",
				speedup, chQueryFloorSpeedup, alt.QueryNS, ch.QueryNS))
		}
	}
	return msgs
}

// gateChurn checks the churn sweep's internal invariants (Quality
// carries each row's worst observed drift vs the periodic full
// re-solve oracle).
func gateChurn(rows []expr.Row) []string {
	var msgs []string
	var exact *expr.Row
	for i := range rows {
		if rows[i].Label == "exact" {
			exact = &rows[i]
			break
		}
	}
	if exact == nil {
		return []string{"churn: no exact (budget 0) row"}
	}
	if exact.Quality > 1e-9 {
		msgs = append(msgs, fmt.Sprintf("churn: exact row drifted %.3g from the oracle (must be 0)", exact.Quality))
	}
	for _, r := range rows {
		if r.Quality > churnDriftCeiling {
			msgs = append(msgs, fmt.Sprintf("churn: %s drift %.4f exceeds the %.2f ceiling", r.Label, r.Quality, churnDriftCeiling))
		}
		if r.Size != exact.Size {
			msgs = append(msgs, fmt.Sprintf("churn: %s size %d != exact size %d (matching must stay maximum under any budget)",
				r.Label, r.Size, exact.Size))
		}
	}
	return msgs
}

// compareFigure gates one figure's latest rows against the baseline's:
// deterministic fields exactly, normalized CPU within tol.
func compareFigure(name string, base, cand []expr.Row, tol float64) []string {
	key := func(r expr.Row) string { return r.Label + "/" + r.Algo }
	bm := map[string]expr.Row{}
	for _, r := range base {
		bm[key(r)] = r
	}
	var msgs []string
	for _, c := range cand {
		b, ok := bm[key(c)]
		if !ok {
			continue
		}
		if c.Size != b.Size {
			msgs = append(msgs, fmt.Sprintf("%s %s: size %d != baseline %d", name, key(c), c.Size, b.Size))
		}
		if relDiff(c.Cost, b.Cost) > 1e-9 {
			msgs = append(msgs, fmt.Sprintf("%s %s: cost %v drifted from baseline %v", name, key(c), c.Cost, b.Cost))
		}
		if c.Esub != b.Esub {
			msgs = append(msgs, fmt.Sprintf("%s %s: |Esub| %d != baseline %d", name, key(c), c.Esub, b.Esub))
		}
	}
	// Normalize by the figure's own first row so only shapes compare.
	bref, cref := refCPU(base), refCPU(cand)
	if bref <= 0 || cref <= 0 {
		return msgs
	}
	for _, c := range cand {
		b, ok := bm[key(c)]
		if !ok || b.CPU <= 0 || key(c) == key(base[0]) {
			continue
		}
		bn := float64(b.CPU) / bref
		cn := float64(c.CPU) / cref
		if cn > bn*(1+tol) {
			msgs = append(msgs, fmt.Sprintf("%s %s: normalized cpu %.3f regressed %.0f%% beyond baseline %.3f (tol %.0f%%, ref %v)",
				name, key(c), cn, 100*(cn/bn-1), bn, 100*tol, time.Duration(cref).Round(time.Millisecond)))
		}
	}
	return msgs
}

// refCPU is a figure's normalization anchor: its first row's CPU.
func refCPU(rows []expr.Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	return float64(rows[0].CPU)
}

// gateServe sanity-gates the serve trajectory's latest row: load runs
// must have completed every request. Latency percentiles are raw
// wall-clock on whatever machine ran them — there is no within-run
// anchor to normalize by, so they are recorded, not gated.
func gateServe(rows []serveRow) []string {
	last := rows[len(rows)-1]
	var msgs []string
	if last.Errors > 0 {
		msgs = append(msgs, fmt.Sprintf("serve: latest run has %d errors", last.Errors))
	}
	if last.OK < last.Requests {
		msgs = append(msgs, fmt.Sprintf("serve: latest run completed %d of %d requests", last.OK, last.Requests))
	}
	return msgs
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
