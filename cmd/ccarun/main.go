// Command ccarun solves one CCA instance from CSV files produced by
// ccagen (or any files in the same format) and reports the matching
// statistics.
//
//	ccarun -providers q.csv -customers p.csv -algo ida
//	ccarun -providers q.csv -customers p.csv -algo ca -delta 10 -out m.csv
//
// Algorithms: ida (default), nia, ria, sspa, greedy, sa, ca.
// With -out, the matching is written as provider,customer,dist rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	cca "repro"
	"repro/internal/core"
	"repro/internal/dataio"
)

func main() {
	var (
		provPath = flag.String("providers", "", "providers CSV: x,y,capacity")
		custPath = flag.String("customers", "", "customers CSV: id,x,y")
		algo     = flag.String("algo", "ida", "ida | nia | ria | sspa | greedy | sa | ca")
		delta    = flag.Float64("delta", 0, "δ for sa/ca (0 = paper default)")
		theta    = flag.Float64("theta", 0.8, "θ for ria")
		outPath  = flag.String("out", "", "write the matching CSV here")
	)
	flag.Parse()
	if *provPath == "" || *custPath == "" {
		fmt.Fprintln(os.Stderr, "ccarun: -providers and -customers are required")
		os.Exit(2)
	}

	providers, err := dataio.ReadProvidersFile(*provPath)
	fatal(err)
	items, err := dataio.ReadCustomersFile(*custPath)
	fatal(err)
	customers, err := cca.IndexItems(items, cca.IndexConfig{})
	fatal(err)
	defer customers.Close()

	start := time.Now()
	var (
		res    *cca.Result
		bound  float64
		approx bool
	)
	switch strings.ToLower(*algo) {
	case "ida":
		res, err = cca.Assign(providers, customers, nil)
	case "nia":
		res, err = cca.AssignNIA(providers, customers, nil)
	case "ria":
		res, err = cca.AssignRIA(providers, customers, &cca.Options{Theta: *theta})
	case "sspa":
		res, err = cca.AssignSSPA(providers, customers, nil)
	case "greedy":
		res, err = cca.GreedyAssign(providers, customers, nil)
	case "sa":
		var ares *cca.ApproxResult
		ares, err = cca.AssignApproxSA(providers, customers, cca.ApproxOptions{Delta: *delta})
		if err == nil {
			res, bound, approx = &ares.Result, ares.ErrorBound, true
		}
	case "ca":
		var ares *cca.ApproxResult
		ares, err = cca.AssignApproxCA(providers, customers, cca.ApproxOptions{Delta: *delta})
		if err == nil {
			res, bound, approx = &ares.Result, ares.ErrorBound, true
		}
	default:
		fmt.Fprintf(os.Stderr, "ccarun: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	fatal(err)
	elapsed := time.Since(start)

	io := customers.IOStats()
	fmt.Printf("algorithm      %s\n", strings.ToUpper(*algo))
	fmt.Printf("providers      %d (total capacity %d)\n", len(providers), totalCap(providers))
	fmt.Printf("customers      %d\n", customers.Len())
	fmt.Printf("matching size  %d\n", res.Size)
	fmt.Printf("cost Ψ(M)      %.3f\n", res.Cost)
	if approx {
		fmt.Printf("error bound    ≤ %.3f above optimal\n", bound)
	}
	fmt.Printf("subgraph |Esub| %d of %d\n", res.Metrics.SubgraphEdges, res.Metrics.FullGraphEdges)
	fmt.Printf("wall time      %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("page faults    %d (simulated I/O %v)\n", io.Faults, io.IOTime())

	if *outPath != "" {
		f, err := os.Create(*outPath)
		fatal(err)
		fatal(dataio.WriteMatching(f, toCorePairs(res.Pairs)))
		fatal(f.Close())
		fmt.Printf("matching written to %s\n", *outPath)
	}
}

func totalCap(providers []cca.Provider) int {
	t := 0
	for _, p := range providers {
		t += p.Cap
	}
	return t
}

func toCorePairs(pairs []cca.Pair) []core.Pair {
	out := make([]core.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = core.Pair(p)
	}
	return out
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccarun:", err)
		os.Exit(1)
	}
}
