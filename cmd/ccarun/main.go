// Command ccarun solves one CCA instance from CSV files produced by
// ccagen (or any files in the same format) and reports the matching
// statistics.
//
//	ccarun -providers q.csv -customers p.csv -algo ida
//	ccarun -providers q.csv -customers p.csv -algo ca -delta 10 -out m.csv
//
// Algorithms are resolved by name through the solver registry; run with
// -algo help (or see the usage text) for the registered set. With -out,
// the matching is written as provider,customer,dist rows.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	cca "repro"
	"repro/internal/dataio"
	"repro/internal/expr"
	"repro/internal/geo/netmetric"
	"repro/internal/obs"
)

func main() {
	var (
		provPath = flag.String("providers", "", "providers CSV: x,y,capacity")
		custPath = flag.String("customers", "", "customers CSV: id,x,y")
		algo     = flag.String("algo", "ida", "solver name: "+strings.Join(cca.Solvers(), " | "))
		delta    = flag.Float64("delta", 0, "δ for the approximate solvers (0 = paper default)")
		theta    = flag.Float64("theta", 0.8, "θ for ria")
		metric   = flag.String("metric", "euclidean", `distance backend: "euclidean" or "network"
(network = shortest-path over the synthetic road network; use the same
-netgrid/-netseed the workload was generated with)`)
		netGrid   = flag.Int("netgrid", 32, "road network grid size for -metric network (ccagen's -grid)")
		netSeed   = flag.Int64("netseed", 2008, "road network seed for -metric network (ccagen's -seed)")
		landmarks = flag.Int("landmarks", -1, `ALT landmark count for -metric network: -1 = default
(`+fmt.Sprint(netmetric.DefaultLandmarks)+`), 0 = disable landmark pruning (plain Dijkstra point queries)`)
		ch = flag.String("ch", "auto", `contraction-hierarchy point queries for -metric network:
"auto" (on at `+fmt.Sprint(netmetric.DefaultCHMinNodes)+`+ nodes), "off", or "on"`)
		distTable = flag.String("disttable", "auto", `bulk distance-table precompute for -metric network:
"auto" (size-gated), "off", or a float64-cell memory budget (e.g. 16000000)`)
		timeout = flag.Duration("timeout", 0, `abort the solve after this long (e.g. 30s, 2m; 0 = no limit);
the solvers observe the deadline between augmenting iterations`)
		shards = flag.Int("shards", 0, `region count for the sharded meta-solver (-algo sharded[:base]):
0 = data-derived automatic count, 1 = no sharding`)
		shardBand = flag.Float64("shardband", 0, `boundary band width for -algo sharded[:base], in data-space
units (0 = 5% of the space diagonal); wider = closer to exact, slower`)
		outPath = flag.String("out", "", "write the matching CSV here")
		trace   = flag.Bool("trace", false, "print the solve's phase-span tree as JSON on stderr")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags]\n\nregistered solvers:\n", os.Args[0])
		for _, line := range cca.DescribeSolvers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %s\n", line)
		}
		fmt.Fprintln(flag.CommandLine.Output(), "\nflags:")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *provPath == "" || *custPath == "" {
		fmt.Fprintln(os.Stderr, "ccarun: -providers and -customers are required")
		flag.Usage()
		os.Exit(2)
	}

	providers, err := dataio.ReadProvidersFile(*provPath)
	fatal(err)
	items, err := dataio.ReadCustomersFile(*custPath)
	fatal(err)
	customers, err := cca.IndexItems(items, cca.IndexConfig{})
	fatal(err)
	defer customers.Close()

	opts := cca.SolverOptions{Delta: *delta}
	opts.Core.Theta = *theta
	opts.Core.Shards = *shards
	opts.Core.ShardBoundary = *shardBand

	var netMetric *netmetric.NetworkMetric
	switch strings.ToLower(*metric) {
	case "", "euclidean":
	case netmetric.Name:
		// Rebuild the road network the workload was generated on (ccagen
		// uses the same grid/seed/space recipe) and measure edge costs as
		// shortest-path travel distances over it.
		netMetric = cca.RoadNetworkMetric(*netGrid, expr.Space, *netSeed).(*netmetric.NetworkMetric)
		netMetric.SetLandmarks(*landmarks)
		switch strings.ToLower(*ch) {
		case "", "auto":
		case "off":
			netMetric.SetCH(0)
		case "on":
			netMetric.SetCH(1)
		default:
			fmt.Fprintf(os.Stderr, "ccarun: -ch must be auto, off, or on (got %q)\n", *ch)
			os.Exit(2)
		}
		opts.Core.Metric = netMetric
		switch strings.ToLower(*distTable) {
		case "", "auto":
		case "off":
			opts.Core.DistTable = -1
		default:
			budget, err := strconv.Atoi(*distTable)
			if err != nil || budget < 1 {
				fmt.Fprintf(os.Stderr, "ccarun: -disttable must be auto, off, or a positive cell budget (got %q)\n", *distTable)
				os.Exit(2)
			}
			opts.Core.DistTable = budget
		}
	default:
		fmt.Fprintf(os.Stderr, "ccarun: unknown metric %q (available: euclidean, network)\n", *metric)
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var root *obs.Span
	if *trace {
		root = obs.NewRoot("ccarun")
		ctx = obs.WithSpan(ctx, root)
	}
	start := time.Now()
	res, err := cca.SolveContext(ctx, *algo, providers, customers, &opts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "ccarun: solve aborted after -timeout %v\n", *timeout)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "ccarun:", err)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	io := customers.IOStats()
	fmt.Printf("algorithm      %s (%s)\n", strings.ToUpper(res.Solver), res.Kind)
	if netMetric != nil {
		st := netMetric.Stats()
		chState := "off"
		if netMetric.CH() {
			q, f := netMetric.CHStats()
			chState = fmt.Sprintf("on (%d queries, %d fallbacks)", q, f)
		}
		fmt.Printf("metric         network (%d nodes, %d edges; %d landmarks; ch %s; node-cache hit rate %.1f%%)\n",
			netMetric.NumNodes(), netMetric.NumEdges(), netMetric.Landmarks(), chState, 100*st.NodeHitRate())
	} else {
		fmt.Printf("metric         euclidean\n")
	}
	fmt.Printf("providers      %d (total capacity %d)\n", len(providers), totalCap(providers))
	fmt.Printf("customers      %d\n", customers.Len())
	fmt.Printf("matching size  %d\n", res.Size)
	fmt.Printf("cost Ψ(M)      %.3f\n", res.Cost)
	if res.Kind == cca.SolverApproximate {
		fmt.Printf("error bound    ≤ %.3f above optimal\n", res.ErrorBound)
	}
	fmt.Printf("subgraph |Esub| %d of %d\n", res.Metrics.SubgraphEdges, res.Metrics.FullGraphEdges)
	if strings.HasPrefix(res.Solver, "sharded") && res.Groups > 0 {
		fmt.Printf("shards         %d (region phase %v, reconcile %v)\n",
			res.Groups, res.ConciseTime.Round(time.Millisecond), res.RefineTime.Round(time.Millisecond))
	}
	fmt.Printf("wall time      %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("page faults    %d (simulated I/O %v)\n", io.Faults, io.IOTime())

	if root != nil {
		root.End()
		tree, err := json.MarshalIndent(root.Tree(), "", "  ")
		fatal(err)
		fmt.Fprintf(os.Stderr, "%s\n", tree)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		fatal(err)
		fatal(dataio.WriteMatching(f, res.Pairs))
		fatal(f.Close())
		fmt.Printf("matching written to %s\n", *outPath)
	}
}

func totalCap(providers []cca.Provider) int {
	t := 0
	for _, p := range providers {
		t += p.Cap
	}
	return t
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccarun:", err)
		os.Exit(1)
	}
}
