package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	cca "repro"
	"repro/client"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/server"
)

// serveRow is one -serve run's measurement — a row of the
// BENCH_serve.json trajectory, append-only so serving latency and
// throughput stay cross-commit diffable like BENCH_shard.json.
type serveRow struct {
	Unix      int64   `json:"unix"`
	Scale     float64 `json:"scale"`
	Workers   int     `json:"workers"`
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"`
	Customers int     `json:"customers_per_request"`
	InFlight  int     `json:"max_inflight"`
	OK        int     `json:"ok"`
	Errors    int     `json:"errors"`
	Retries   int     `json:"rejected_429_retries"`
	Arrivals  int     `json:"session_arrivals"`
	Departs   int     `json:"session_departures"`
	Resizes   int     `json:"session_resizes"`
	WallMS    float64 `json:"wall_ms"`
	RPS       float64 `json:"rps"`
	P50MS     float64 `json:"p50_ms"`
	P90MS     float64 `json:"p90_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// runServe is the ccabench -serve load mode: boot an in-process ccad
// server (real listener, real HTTP), fire -clients concurrent clients
// mixing batch solves and session churn (arrivals, departures, and
// capacity resizes) at it, and report the latency/throughput
// trajectory. 429 backpressure responses are retried (and counted) —
// the load mode deliberately runs hotter than the admission bound to
// exercise shedding.
func runServe(scale float64, clients, requests, inflight int, jsonPath string) error {
	nCustomers := int(4000 * scale)
	if nCustomers < 100 {
		nCustomers = 100
	}
	net32 := datagen.NewNetwork(32, expr.Space, 2008)
	pts := net32.Points(datagen.Config{N: nCustomers, Dist: datagen.Clustered, Seed: 1})
	wireCust := make([]client.Customer, len(pts))
	for i, p := range pts {
		wireCust[i] = client.Customer{ID: int64(i), X: p.X, Y: p.Y}
	}

	engine := &cca.Engine{}
	srv, err := server.New(server.Config{Engine: engine, MaxInFlight: inflight})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain()
		hs.Shutdown(ctx)
		srv.Close()
		engine.Close()
	}()

	c := client.New("http://"+ln.Addr().String(), &http.Client{Timeout: 2 * time.Minute})
	ctx := context.Background()

	// Distinct provider sets per request (seeded by request index) keep
	// the load real work instead of result-cache replays; the per-client
	// session adds arrival traffic between solves.
	makeInstance := func(reqIdx int) client.Instance {
		qpts := net32.Points(datagen.Config{N: 8, Dist: datagen.Uniform, Seed: int64(100 + reqIdx)})
		providers := make([]client.Provider, len(qpts))
		for i, p := range qpts {
			providers[i] = client.Provider{X: p.X, Y: p.Y, Cap: 1 + nCustomers/(10*len(qpts))}
		}
		lane := "interactive"
		if reqIdx%2 == 1 {
			lane = "batch"
		}
		return client.Instance{
			Label:     fmt.Sprintf("load-%d", reqIdx),
			Solver:    "ida",
			Providers: providers,
			Customers: wireCust,
			Lane:      lane,
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		okCount   int
		errCount  int
		retries   atomic.Int64
		arrivals  atomic.Int64
		departs   atomic.Int64
		resizes   atomic.Int64
		nextReq   atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			baseCap := requests/clients + 1
			sess, err := c.NewSession(ctx, client.SessionRequest{Providers: []client.Provider{
				{X: float64(50 + cl*97%900), Y: 500, Cap: baseCap},
			}})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ccabench: client %d: session: %v\n", cl, err)
			}
			var live []int64 // arrived-and-not-departed ids, oldest first
			for {
				idx := int(nextReq.Add(1)) - 1
				if idx >= requests {
					return
				}
				req := client.SolveRequest{Instances: []client.Instance{makeInstance(idx)}}
				t0 := time.Now()
				var resp *client.SolveResponse
				for {
					resp, err = c.Solve(ctx, req)
					if client.IsBackpressure(err) {
						retries.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					break
				}
				lat := time.Since(t0)
				mu.Lock()
				if err != nil || resp.Results[0].Error != "" {
					errCount++
					if err != nil {
						fmt.Fprintf(os.Stderr, "ccabench: request %d: %v\n", idx, err)
					} else {
						fmt.Fprintf(os.Stderr, "ccabench: request %d: %s\n", idx, resp.Results[0].Error)
					}
				} else {
					okCount++
					latencies = append(latencies, lat)
				}
				mu.Unlock()
				if sess != nil {
					// Churn traffic between solves: arrive, depart the
					// oldest once the client holds more than four live
					// customers, and periodically wobble the provider's
					// capacity — the full online event mix, not just
					// arrivals.
					if _, err := c.Arrive(ctx, sess.ID, client.ArriveRequest{
						ID: int64(idx), X: pts[idx%len(pts)].X, Y: pts[idx%len(pts)].Y,
					}); err == nil {
						arrivals.Add(1)
						live = append(live, int64(idx))
					}
					if len(live) > 4 {
						if _, err := c.Depart(ctx, sess.ID, client.DepartRequest{ID: live[0]}); err == nil {
							departs.Add(1)
						}
						live = live[1:]
					}
					if idx%8 == 7 {
						if _, err := c.Resize(ctx, sess.ID, client.ResizeRequest{
							Provider: 0, Cap: baseCap + idx%2,
						}); err == nil {
							resizes.Add(1)
						}
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	row := serveRow{
		Unix:      time.Now().Unix(),
		Scale:     scale,
		Workers:   runtime.GOMAXPROCS(0),
		Clients:   clients,
		Requests:  requests,
		Customers: nCustomers,
		InFlight:  inflight,
		OK:        okCount,
		Errors:    errCount,
		Retries:   int(retries.Load()),
		Arrivals:  int(arrivals.Load()),
		Departs:   int(departs.Load()),
		Resizes:   int(resizes.Load()),
		WallMS:    float64(wall) / float64(time.Millisecond),
		RPS:       float64(okCount) / wall.Seconds(),
		P50MS:     pct(0.50),
		P90MS:     pct(0.90),
		P99MS:     pct(0.99),
		MaxMS:     pct(1.0),
	}

	fmt.Printf("serve load: %d clients × %d requests (%d customers each), admission %d\n",
		clients, requests, nCustomers, inflight)
	fmt.Printf("  ok %d, errors %d, 429 retries %d, session churn %d/%d/%d (arrive/depart/resize)\n",
		row.OK, row.Errors, row.Retries, row.Arrivals, row.Departs, row.Resizes)
	fmt.Printf("  wall %v, throughput %.1f req/s\n", wall.Round(time.Millisecond), row.RPS)
	fmt.Printf("  latency p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n",
		row.P50MS, row.P90MS, row.P99MS, row.MaxMS)

	scrape, err := c.Metrics(ctx)
	if err == nil {
		fmt.Printf("  /metrics scrape: %d bytes\n", len(scrape))
	}

	if jsonPath != "" {
		if err := appendServeRow(jsonPath, row); err != nil {
			return err
		}
		fmt.Printf("  row appended to %s\n", jsonPath)
	}
	if errCount > 0 {
		return fmt.Errorf("%d requests failed", errCount)
	}
	return nil
}

// appendServeRow appends one run to the trajectory file (a JSON array).
func appendServeRow(path string, row serveRow) error {
	var rows []serveRow
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rows); err != nil {
			return fmt.Errorf("%s: existing trajectory unreadable: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	rows = append(rows, row)
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
