// Command ccabench regenerates the tables behind every figure of the
// paper's evaluation (§5, Figures 8–18) plus the ablation studies.
//
// Usage:
//
//	ccabench -fig 9 -scale 0.1        # one figure
//	ccabench -fig all -scale 0.05     # the whole evaluation
//	ccabench -fig ablation            # optimization ablations
//
// scale proportionally shrinks |Q| and |P| (1.0 = the paper's
// cardinalities: |Q|=1K, |P|=100K). Capacities are unscaled, preserving
// the k·|Q| vs |P| ratios that drive every trend in the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/expr"
	"repro/internal/geo/netmetric"
	"repro/internal/solver"
)

func main() {
	fig := flag.String("fig", "all", `figure to regenerate: 8..18, "ablation", "theta", "baselines", "index", "shard", "net", "churn", or "all"`)
	scale := flag.Float64("scale", 0.05, "cardinality scale factor (1.0 = paper size)")
	algos := flag.String("algos", "", "comma-separated solver names swept by the exact figures\n(default "+
		strings.Join(expr.ExactAlgos(), ",")+"; registered: "+strings.Join(solver.Names(), ",")+")")
	metric := flag.String("metric", "euclidean", `distance backend: "euclidean" (the paper's setting) or
"network" (shortest-path distance on the generated road network)`)
	stream := flag.Int("stream", 1, `scheduler workers for the figure sweeps: 1 (default) runs
points sequentially with clean CPU timings; higher values stream
independent figure points through the shared scheduler concurrently
(faster wall clock, noisier per-point CPU numbers); 0 selects GOMAXPROCS`)
	shards := flag.Int("shards", 0, `region count threaded into every sweep for sharded:* solvers
(0 = the shard layer's automatic count); pick solvers with -algos,
e.g. -algos ida,sharded:ida -shards 8`)
	landmarks := flag.Int("landmarks", -1, `ALT landmark count for -metric network workloads: -1 = default,
0 = disable landmark pruning (plain Dijkstra point queries)`)
	table := flag.String("table", "auto", `bulk distance-table precompute threaded into every sweep's
options: "auto" (size-gated), "off", or a float64-cell memory budget`)
	ch := flag.String("ch", "auto", `contraction-hierarchy point queries for -metric network
workloads: "auto" (on at `+fmt.Sprint(netmetric.DefaultCHMinNodes)+`+ nodes), "off", or "on"`)
	jsonOut := flag.String("json", "", `append the run's rows to this JSON trajectory file
(e.g. BENCH_shard.json for -fig shard, BENCH_net.json for -fig net,
BENCH_serve.json with -serve); each run appends one document, so the
file accumulates a cross-commit trajectory benchgate can diff`)
	serve := flag.Bool("serve", false, `serving load mode: boot an in-process ccad server and drive it
with concurrent HTTP clients mixing batch solves and session
arrivals; reports latency percentiles and throughput instead of
figure tables (-fig is ignored)`)
	clients := flag.Int("clients", 8, "-serve: concurrent load clients")
	requests := flag.Int("requests", 48, "-serve: total solve requests across all clients")
	inflight := flag.Int("inflight", 4, "-serve: server admission bound (MaxInFlight); load beyond it is shed with 429 and retried")
	flag.Parse()

	if *serve {
		if err := runServe(*scale, *clients, *requests, *inflight, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "ccabench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if err := expr.SetMetric(*metric); err != nil {
		fmt.Fprintf(os.Stderr, "ccabench: %v\n", err)
		os.Exit(2)
	}
	expr.SetShards(*shards)
	expr.SetLandmarks(*landmarks)
	switch strings.ToLower(*table) {
	case "", "auto":
	case "off":
		expr.SetDistTable(-1)
	default:
		budget, err := strconv.Atoi(*table)
		if err != nil || budget < 1 {
			fmt.Fprintf(os.Stderr, "ccabench: -table must be auto, off, or a positive cell budget (got %q)\n", *table)
			os.Exit(2)
		}
		expr.SetDistTable(budget)
	}
	switch strings.ToLower(*ch) {
	case "", "auto":
	case "off":
		expr.SetCH(0)
	case "on":
		expr.SetCH(1)
	default:
		fmt.Fprintf(os.Stderr, "ccabench: -ch must be auto, off, or on (got %q)\n", *ch)
		os.Exit(2)
	}

	streaming := false
	if *stream == 0 {
		*stream = runtime.GOMAXPROCS(0)
	}
	if *stream > 1 {
		expr.SetStreamWorkers(*stream)
		streaming = true
	}

	if *algos != "" {
		names := strings.Split(*algos, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		if err := expr.SetExactAlgos(names); err != nil {
			fmt.Fprintf(os.Stderr, "ccabench: %v\n", err)
			os.Exit(2)
		}
	}

	trajectory := map[string][]expr.Row{}
	wrap := func(name string, f func(float64, io.Writer) ([]expr.Row, error)) func(float64) error {
		return func(s float64) error {
			rows, err := f(s, os.Stdout)
			if err == nil && *jsonOut != "" {
				trajectory[name] = rows
			}
			return err
		}
	}
	runners := map[string]func(float64) error{
		"8":         wrap("8", expr.Fig8),
		"9":         wrap("9", expr.Fig9),
		"10":        wrap("10", expr.Fig10),
		"11":        wrap("11", expr.Fig11),
		"12":        wrap("12", expr.Fig12),
		"13":        wrap("13", expr.Fig13),
		"14":        wrap("14", expr.Fig14),
		"15":        wrap("15", expr.Fig15),
		"16":        wrap("16", expr.Fig16),
		"17":        wrap("17", expr.Fig17),
		"18":        wrap("18", expr.Fig18),
		"ablation":  wrap("ablation", expr.Ablation),
		"theta":     wrap("theta", expr.ThetaSensitivity),
		"baselines": wrap("baselines", expr.BaselineScaling),
		"index":     wrap("index", expr.IndexPolicy),
		"shard":     wrap("shard", expr.ShardScaling),
		"net":       wrap("net", expr.NetBackends),
		"churn":     wrap("churn", expr.ChurnDrift),
	}
	order := []string{"8", "9", "10", "11", "12", "13", "14", "15", "16", "17", "18", "ablation", "theta", "baselines", "index", "shard", "net", "churn"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else if _, ok := runners[*fig]; ok {
		selected = []string{*fig}
	} else {
		fmt.Fprintf(os.Stderr, "ccabench: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	for _, f := range selected {
		start := time.Now()
		if err := runners[f](*scale); err != nil {
			fmt.Fprintf(os.Stderr, "ccabench: figure %s: %v\n", f, err)
			os.Exit(1)
		}
		fmt.Printf("[figure %s done in %v]\n", f, time.Since(start).Round(time.Millisecond))
	}

	if streaming {
		m := expr.StreamMetrics()
		fmt.Printf("\nscheduler: %d workers, %d points, Σ queue wait %v (max %v)\n",
			m.Workers, m.Completed, m.QueueWait.Round(time.Millisecond), m.MaxQueueWait.Round(time.Millisecond))
		for i, w := range m.PerWorker {
			fmt.Printf("  worker %d: %d points, busy %v (%.0f%% of uptime)\n",
				i, w.Tasks, w.Busy.Round(time.Millisecond), 100*w.Utilization)
		}
	}

	if *jsonOut != "" {
		if err := writeTrajectory(*jsonOut, *scale, *shards, trajectory); err != nil {
			fmt.Fprintf(os.Stderr, "ccabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrajectory written to %s\n", *jsonOut)
	}
}

// trajectoryRun is one ccabench run's measurements — one element of a
// trajectory file (BENCH_shard.json, BENCH_net.json), which is a JSON
// array accumulating one document per run so downstream tooling
// (cmd/benchgate) can diff runs across commits.
type trajectoryRun struct {
	Unix    int64                 `json:"unix"`
	Scale   float64               `json:"scale"`
	Metric  string                `json:"metric"`
	Shards  int                   `json:"shards"`
	Workers int                   `json:"workers"`
	Figures map[string][]expr.Row `json:"figures"`
}

// writeTrajectory appends a run to the trajectory file. A pre-existing
// file holding a single run object (the format before trajectories
// appended) is absorbed as the array's first element rather than
// overwritten, so old baselines keep their history.
func writeTrajectory(path string, scale float64, shards int, figures map[string][]expr.Row) error {
	doc := trajectoryRun{
		Unix:    time.Now().Unix(),
		Scale:   scale,
		Metric:  expr.MetricName(),
		Shards:  shards,
		Workers: runtime.GOMAXPROCS(0),
		Figures: figures,
	}
	var runs []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if json.Unmarshal(data, &runs) != nil {
			runs = nil
			var legacy trajectoryRun
			if json.Unmarshal(data, &legacy) == nil && legacy.Figures != nil {
				if raw, err := json.Marshal(legacy); err == nil {
					runs = []json.RawMessage{raw}
				}
			}
		}
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	runs = append(runs, raw)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
